// Package cliutil carries the observability wiring shared by the dcer
// command-line binaries: the opt-in -telemetry exposition endpoint, the
// -traceout Chrome trace export, the -health monitor with its stall
// watchdog, and the leveled progress logger (DCER_LOG / -log).
package cliutil

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"dcer/internal/health"
	"dcer/internal/telemetry"
)

// ValidateTCPAddr checks that addr is usable as a TCP host:port for
// -listen/-connect style flags: the host part may be empty (all
// interfaces) but the port must be present and numeric in [0, 65535].
// It validates shape only — no DNS lookup, no bind.
func ValidateTCPAddr(addr string) error {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad TCP address %q: %v", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("bad TCP address %q: port %q must be a number in [0, 65535]", addr, port)
	}
	return nil
}

// Flags holds the shared observability flags; call Register before
// flag.Parse and Init after.
type Flags struct {
	addr      *string
	level     *string
	traceout  *string
	healthDir *string
	stallDl   *time.Duration
	on        bool
	mon       *health.Monitor
}

// Register installs -telemetry, -traceout, -health, -stalldeadline and
// -log on the default flag set.
func Register() *Flags {
	return &Flags{
		addr: flag.String("telemetry", "",
			"serve /metrics, /debug/dcer, /debug/trace, /debug/health and pprof on this address (empty = disabled; :0 picks a port)"),
		traceout: flag.String("traceout", "",
			"write the run's causal trace as Chrome trace-event JSON to this file on exit (load in Perfetto or chrome://tracing)"),
		healthDir: flag.String("health", "",
			"enable the health monitor (invariant auditors, stall watchdog, /debug/health) writing flight-recorder bundles under this directory (empty = disabled)"),
		stallDl: flag.Duration("stalldeadline", 0,
			"stall-watchdog deadline for -health (0 = the generous default; small values clamp up)"),
		level: flag.String("log", "",
			"log level: debug, info, warn, error, off (default $DCER_LOG, else info)"),
	}
}

// Init resolves the flags after flag.Parse: it builds the binary's stderr
// logger, when -telemetry was given starts the exposition server over
// telemetry.Default, and when -health was given starts a health monitor
// (with its stall watchdog) over the same registry. When -traceout was
// given the returned stop function writes the retained span ring as
// Chrome trace-event JSON to the file; it is safe to defer either way.
func (f *Flags) Init(prefix string) (*telemetry.Logger, func(), error) {
	lvl := telemetry.LogLevelFromEnv()
	if *f.level != "" {
		var err error
		if lvl, err = telemetry.ParseLogLevel(*f.level); err != nil {
			return nil, nil, err
		}
	}
	logg := telemetry.NewLogger(os.Stderr, prefix, lvl)
	stopServe := func() {}
	if *f.addr != "" {
		srv, err := telemetry.Serve(*f.addr, telemetry.Default)
		if err != nil {
			return nil, nil, err
		}
		f.on = true
		logg.Infof("telemetry: http://%s/metrics (also /debug/dcer, /debug/trace, /debug/health, /debug/pprof/)", srv.Addr)
		stopServe = func() { srv.Close() }
	}
	if *f.traceout != "" {
		// Tracing rides the same registry as -telemetry; engines attach
		// via Registry(), so a -traceout run without -telemetry still
		// records spans (it just doesn't serve them).
		f.on = true
	}
	if *f.healthDir != "" {
		// The monitor rides telemetry.Default so /debug/health and the
		// dcer_health_* series appear wherever -telemetry serves, and
		// engines attach it via Health().
		f.on = true
		f.mon = health.NewMonitor(health.Options{
			Registry:      telemetry.Default,
			Log:           logg,
			DiagnosisDir:  *f.healthDir,
			StallDeadline: *f.stallDl,
		})
		f.mon.Start()
		logg.Infof("health: monitor on, flight-recorder bundles under %s", *f.healthDir)
	}
	stop := func() {
		if *f.traceout != "" {
			if err := writeTrace(*f.traceout); err != nil {
				logg.Errorf("traceout: %v", err)
			} else {
				logg.Infof("traceout: wrote %s", *f.traceout)
			}
		}
		if f.mon != nil {
			f.mon.Stop()
		}
		stopServe()
	}
	return logg, stop, nil
}

// writeTrace exports telemetry.Default's span ring to path.
func writeTrace(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.Tracer().WriteChromeTrace(fh); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

// Registry returns the registry engines should publish to:
// telemetry.Default when -telemetry, -traceout or -health is live, nil
// (all instruments no-op) otherwise.
func (f *Flags) Registry() *telemetry.Registry {
	if f.on {
		return telemetry.Default
	}
	return nil
}

// Health returns the monitor engines should attach to: the -health
// monitor when the flag is live, nil (the disabled mode) otherwise.
func (f *Flags) Health() *health.Monitor {
	return f.mon
}
