package cliutil

import "testing"

func TestValidateTCPAddr(t *testing.T) {
	valid := []string{
		"127.0.0.1:0",
		"127.0.0.1:4000",
		":9090",
		"localhost:65535",
		"[::1]:8080",
	}
	for _, addr := range valid {
		if err := ValidateTCPAddr(addr); err != nil {
			t.Errorf("ValidateTCPAddr(%q) = %v, want nil", addr, err)
		}
	}
	invalid := []string{
		"",
		"no-port",
		"127.0.0.1",
		"127.0.0.1:",
		"127.0.0.1:http",
		"127.0.0.1:65536",
		"127.0.0.1:-1",
		"host:port:extra",
	}
	for _, addr := range invalid {
		if err := ValidateTCPAddr(addr); err == nil {
			t.Errorf("ValidateTCPAddr(%q) = nil, want error", addr)
		}
	}
}
