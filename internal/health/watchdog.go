package health

import (
	"sync/atomic"
	"time"
)

// Watchdog timing defaults. The default deadline is deliberately generous:
// a loaded CI host may deschedule an engine for seconds, and a false
// stall report (which writes a bundle and fails the stall check) is far
// worse than a slow detection. Tests override via Options.StallDeadline.
const (
	DefaultStallDeadline = 2 * time.Minute
	MinStallDeadline     = 10 * time.Millisecond
	MinPollInterval      = 2 * time.Millisecond
	MaxPollInterval      = 5 * time.Second
)

// resolveDeadline maps an Options.StallDeadline value to the effective
// watchdog deadline: nonpositive means the default, positives are clamped
// up to MinStallDeadline (property-tested in watchdog_test.go).
func resolveDeadline(d time.Duration) time.Duration {
	if d <= 0 {
		return DefaultStallDeadline
	}
	if d < MinStallDeadline {
		return MinStallDeadline
	}
	return d
}

// resolvePoll maps (Options.PollInterval, effective deadline) to the
// watchdog's wake cadence: explicit positive values win, otherwise
// deadline/8 clamped to [MinPollInterval, MaxPollInterval]. Always at
// most the deadline, so a stall is detected within one deadline plus one
// poll.
func resolvePoll(p, deadline time.Duration) time.Duration {
	if p <= 0 {
		p = deadline / 8
	}
	if p < MinPollInterval {
		p = MinPollInterval
	}
	if p > MaxPollInterval {
		p = MaxPollInterval
	}
	if p > deadline {
		p = deadline
	}
	return p
}

// Heartbeat is a progress pulse owned by one engine loop. The loop brackets
// its run with Enter/Exit and calls Beat once per round — a single atomic
// add, the entire steady-state cost. The watchdog only considers a
// heartbeat stalled while it is active (between Enter and Exit), so idle
// engines never alarm.
type Heartbeat struct {
	name   string
	beats  atomic.Int64
	active atomic.Int64
}

// Enter marks the loop as running (nestable; Deduce inside DMatch workers
// shares one heartbeat).
func (h *Heartbeat) Enter() {
	if h == nil {
		return
	}
	h.active.Add(1)
	h.beats.Add(1)
}

// Beat records one round of progress.
func (h *Heartbeat) Beat() {
	if h == nil {
		return
	}
	h.beats.Add(1)
}

// Exit marks the loop as finished.
func (h *Heartbeat) Exit() {
	if h == nil {
		return
	}
	h.active.Add(-1)
}

// Beats returns the total number of beats.
func (h *Heartbeat) Beats() int64 {
	if h == nil {
		return 0
	}
	return h.beats.Load()
}

func (h *Heartbeat) report() HeartbeatReport {
	return HeartbeatReport{Name: h.name, Beats: h.beats.Load(), Active: h.active.Load() > 0}
}

// wdState is the watchdog's per-heartbeat bookkeeping. It lives on the
// monitor side so Beat stays a bare atomic add with no clock read.
type wdState struct {
	lastBeats int64
	lastMove  time.Time
	stalled   bool
}

// Start launches the watchdog goroutine. It wakes every poll interval,
// and for every active heartbeat whose beat count has not moved within
// the deadline it declares a stall: increments dcer_health_stalls, fails
// the stall_watchdog check, and captures one flight-recorder bundle for
// the episode (re-armed when beats resume). Stop ends it.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()

	deadline := resolveDeadline(m.opts.StallDeadline)
	poll := resolvePoll(m.opts.PollInterval, deadline)
	go m.watch(stop, done, deadline, poll)
}

// Stop terminates the watchdog goroutine and detaches the monitor from
// the registry's health provider and the logger's wide tail.
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	m.reg.SetHealth(nil)
	if m.opts.Log != nil {
		m.opts.Log.AttachWideTail(nil)
	}
}

func (m *Monitor) watch(stop <-chan struct{}, done chan<- struct{}, deadline, poll time.Duration) {
	defer close(done)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	states := make(map[*Heartbeat]*wdState)
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			m.pollOnce(states, now, deadline)
		}
	}
}

// pollOnce runs one watchdog scan. Split out (and clock-injected) for
// tests.
func (m *Monitor) pollOnce(states map[*Heartbeat]*wdState, now time.Time, deadline time.Duration) {
	m.mu.Lock()
	hbs := make([]*Heartbeat, 0, len(m.hborder))
	for _, name := range m.hborder {
		hbs = append(hbs, m.hbs[name])
	}
	m.mu.Unlock()

	allClear := true
	for _, h := range hbs {
		st, ok := states[h]
		if !ok {
			st = &wdState{lastBeats: h.beats.Load(), lastMove: now}
			states[h] = st
		}
		beats := h.beats.Load()
		if beats != st.lastBeats {
			st.lastBeats = beats
			st.lastMove = now
			st.stalled = false
		}
		if h.active.Load() <= 0 {
			// Idle loops don't alarm; re-arm so the next Enter starts fresh.
			st.lastMove = now
			st.stalled = false
			continue
		}
		if now.Sub(st.lastMove) < deadline {
			continue
		}
		allClear = false
		if st.stalled {
			continue // one stall + one bundle per episode
		}
		st.stalled = true
		m.stalls.Add(1)
		m.stallC.Inc()
		stuck := now.Sub(st.lastMove)
		m.stallCheck.Fail(1, "heartbeat %q active with no progress for %s (deadline %s)", h.name, stuck.Round(time.Millisecond), deadline)
		if dir, err := m.CaptureBundle("stall:" + h.name); err == nil {
			m.lastBundle.Store(&dir)
		}
	}
	if allClear && m.stallCheck.Status() == StatusFail {
		// Progress resumed everywhere: the watchdog check recovers, the
		// stall counter and last-failure detail keep the history.
		m.stallCheck.Pass(0)
	}
}
