package health

import (
	"fmt"
	"math/rand"
)

// UFView is the read-only slice of a union-find forest the auditors need:
// the id-space size and raw parent links (no path compression, no
// mutation). *unionfind.UnionFind satisfies it.
type UFView interface {
	Len() int
	Parent(x int) int
}

// SampleIDs returns k ids drawn uniformly (with replacement) from [0, n),
// deterministic for a given seed. k >= n returns every id instead.
func SampleIDs(n, k int, seed int64) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, k)
	for i := range ids {
		ids[i] = rng.Intn(n)
	}
	return ids
}

// AuditUnionFind walks the parent chain of every sampled id and returns
// the first violation found: a parent link outside [0, Len) or a chain
// longer than the id space (a cycle — no rooted forest has one). Nil
// means the sampled subset is canonical: every chain ends at a
// self-parented root.
func AuditUnionFind(u UFView, sample []int) error {
	n := u.Len()
	for _, x := range sample {
		if x < 0 || x >= n {
			continue
		}
		steps := 0
		for y := x; ; {
			p := u.Parent(y)
			if p < 0 || p >= n {
				return fmt.Errorf("id %d: parent link %d out of range [0,%d)", y, p, n)
			}
			if p == y {
				break // self-parented root: chain is canonical
			}
			y = p
			if steps++; steps > n {
				return fmt.Errorf("id %d: parent chain exceeds %d links (cycle)", x, n)
			}
		}
	}
	return nil
}
