package health_test

import (
	"strings"
	"testing"

	"dcer/internal/health"
)

func TestDiagnoseUnattached(t *testing.T) {
	d := health.Diagnose(health.Report{})
	if d.Healthy() {
		t.Fatal("an unattached report diagnosed healthy")
	}
	if len(d.Lines) != 1 || !strings.HasPrefix(d.Lines[0], "FAIL") {
		t.Fatalf("unexpected diagnosis: %q", d.Lines)
	}
}

func TestDiagnoseHealthy(t *testing.T) {
	rep := health.Report{
		Attached: true,
		Checks: []health.CheckReport{
			{Name: "unionfind_roots", Status: "pass", Runs: 3, Samples: 192},
			{Name: "stall_watchdog", Status: "pass"},
		},
		Heartbeats: []health.HeartbeatReport{{Name: "chase_drain", Beats: 12}},
	}
	d := health.Diagnose(rep)
	if !d.Healthy() || d.Warnings != 0 {
		t.Fatalf("healthy report diagnosed failures=%d warnings=%d:\n%s", d.Failures, d.Warnings, d)
	}
}

func TestDiagnoseFailuresAndWarnings(t *testing.T) {
	rep := health.Report{
		Attached: true,
		Checks: []health.CheckReport{
			{Name: "gamma_provenance", Status: "fail", Runs: 2, Samples: 64, Violations: 1, Detail: "match (3, 5) has no justification"},
			{Name: "depstore_bytes", Status: "warn", Runs: 2, Detail: "accounted bytes 40% above the sampled estimate"},
			// A check that violated earlier and since recovered still fails
			// the diagnosis: the violation demands a look.
			{Name: "unionfind_roots", Status: "pass", Runs: 9, Violations: 2},
		},
	}
	d := health.Diagnose(rep)
	if d.Healthy() {
		t.Fatal("failing checks diagnosed healthy")
	}
	if d.Failures != 2 || d.Warnings != 1 {
		t.Fatalf("failures=%d warnings=%d, want 2 and 1:\n%s", d.Failures, d.Warnings, d)
	}
	if !strings.Contains(d.String(), "no justification") {
		t.Error("diagnosis drops the failure detail")
	}
}

func TestDiagnoseStallBundlePointer(t *testing.T) {
	rep := health.Report{
		Attached: true,
		Checks: []health.CheckReport{
			{Name: "stall_watchdog", Status: "pass", Violations: 1, Detail: "heartbeat wedged"},
		},
		Stalls:     1,
		Bundles:    1,
		LastBundle: "/tmp/dcer-health/bundle-1-123",
	}
	d := health.Diagnose(rep)
	if d.Healthy() {
		t.Fatal("a stalled report diagnosed healthy")
	}
	if !strings.Contains(d.String(), "bundle-1-123") {
		t.Error("diagnosis does not point the operator at the flight-recorder bundle")
	}
}
