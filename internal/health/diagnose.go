package health

import (
	"fmt"
	"sort"
	"strings"
)

// Diagnosis is the human-readable reading of a health report: one line
// per finding plus failure/warning totals. cmd/doctor prints it and exits
// nonzero when Healthy() is false.
type Diagnosis struct {
	Lines    []string
	Failures int
	Warnings int
}

// Healthy reports whether the diagnosis found no failures.
func (d Diagnosis) Healthy() bool { return d.Failures == 0 }

// String renders the diagnosis, one finding per line.
func (d Diagnosis) String() string { return strings.Join(d.Lines, "\n") }

// Diagnose reads a health report the way an operator would: every check's
// latest status (a fail or any recorded violation is a failure — a check
// that recovered after violating still demands a look), the stall count,
// heartbeat liveness, accuracy gauges, and calibration coverage.
func Diagnose(rep Report) Diagnosis {
	var d Diagnosis
	add := func(format string, args ...any) {
		d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
	}
	if !rep.Attached {
		d.Failures++
		add("FAIL no health monitor attached to this process")
		return d
	}
	for _, c := range rep.Checks {
		switch {
		case c.Status == StatusFail.String() || c.Violations > 0:
			d.Failures++
			detail := c.Detail
			if detail == "" {
				detail = "no detail recorded"
			}
			add("FAIL %-20s %d violation(s) over %d sampled in %d run(s): %s",
				c.Name, c.Violations, c.Samples, c.Runs, detail)
		case c.Status == StatusWarn.String():
			d.Warnings++
			add("WARN %-20s %s", c.Name, c.Detail)
		default:
			add("ok   %-20s %d run(s), %d sampled", c.Name, c.Runs, c.Samples)
		}
	}
	if rep.Stalls > 0 {
		// Already counted as a failure via the stall_watchdog check's
		// violations; surface the bundle pointer alongside.
		if rep.LastBundle != "" {
			add("     flight recorder: %d bundle(s), last at %s", rep.Bundles, rep.LastBundle)
		}
	}
	for _, h := range rep.Heartbeats {
		state := "idle"
		if h.Active {
			state = "active"
		}
		add("ok   heartbeat %-10s %s, %d beat(s)", h.Name, state, h.Beats)
	}
	if a := rep.Accuracy; a != nil {
		add("     accuracy: precision=%.4f (tp=%d fp=%d sampled), recall=%.4f (%d/%d truth pairs probed)",
			a.Precision, a.SampledTP, a.SampledFP, a.Recall, a.RecallMatched, a.RecallSampled)
		rules := make([]string, 0, len(a.FPByRule))
		for rule := range a.FPByRule {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			add("     false positives attributed to %s: %d", rule, a.FPByRule[rule])
		}
	}
	for _, c := range rep.Calibration {
		add("     calibration %s: %d score(s), %d positive, threshold %.2f",
			c.Classifier, c.Count, c.Positives, c.Threshold)
	}
	return d
}
