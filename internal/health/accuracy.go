package health

import (
	"sync"
	"sync/atomic"

	"dcer/internal/eval"
	"dcer/internal/relation"
	"dcer/internal/telemetry"
)

// Accuracy is the live accuracy observatory: when ground truth is
// available (datagen/experiment runs), the engines feed it sampled Γ
// match pairs and periodic recall probes, and it maintains running
// precision/recall estimates as gauges plus per-rule false-positive
// attribution counters. Safe for concurrent use — DMatch workers and the
// master all observe into one instance.
type Accuracy struct {
	truth *eval.Truth
	n     int
	seed  int64
	reg   *telemetry.Registry

	tp, fp        atomic.Int64
	recallSampled atomic.Int64
	recallMatched atomic.Int64
	precG, recG   *telemetry.Gauge

	mu       sync.Mutex
	fpByRule map[string]int64
	fpCtr    map[string]*telemetry.Counter
}

func newAccuracy(truth *eval.Truth, n int, seed int64, reg *telemetry.Registry) *Accuracy {
	return &Accuracy{
		truth:    truth,
		n:        n,
		seed:     seed,
		reg:      reg,
		precG:    reg.Gauge("dcer_health_precision"),
		recG:     reg.Gauge("dcer_health_recall"),
		fpByRule: make(map[string]int64),
		fpCtr:    make(map[string]*telemetry.Counter),
	}
}

// Truth returns the ground truth the observatory scores against.
func (a *Accuracy) Truth() *eval.Truth {
	if a == nil {
		return nil
	}
	return a.truth
}

// SampleSize returns the per-probe sample bound.
func (a *Accuracy) SampleSize() int {
	if a == nil {
		return 0
	}
	return a.n
}

// ObserveMatches scores a batch of derived match pairs (the caller samples
// newly added Γ entries, so each fact is counted once) against the truth
// and updates the precision gauge. attribute maps a false-positive pair to
// the rule or classifier named in its provenance proof; nil or "" falls
// back to "unattributed".
func (a *Accuracy) ObserveMatches(pairs [][2]relation.TID, attribute func(p [2]relation.TID) string) {
	if a == nil || len(pairs) == 0 {
		return
	}
	var tp, fp int64
	for _, p := range pairs {
		if a.truth.Has(p[0], p[1]) {
			tp++
			continue
		}
		fp++
		rule := ""
		if attribute != nil {
			rule = attribute(p)
		}
		if rule == "" {
			rule = "unattributed"
		}
		a.countFP(rule)
	}
	a.tp.Add(tp)
	a.fp.Add(fp)
	t, f := a.tp.Load(), a.fp.Load()
	if t+f > 0 {
		a.precG.Set(float64(t) / float64(t+f))
	}
}

func (a *Accuracy) countFP(rule string) {
	a.mu.Lock()
	a.fpByRule[rule]++
	c, ok := a.fpCtr[rule]
	if !ok {
		c = a.reg.Counter("dcer_health_fp_attributed", telemetry.Label{Key: "rule", Value: rule})
		a.fpCtr[rule] = c
	}
	a.mu.Unlock()
	c.Inc()
}

// ObserveRecall probes the deterministic truth sample (eval.Truth.Sample
// with the monitor's seed): same reports whether the engine currently
// matches a pair, and the recall gauge becomes the matched fraction. The
// estimate is a lower bound mid-run and converges as the chase fixpoint
// approaches.
func (a *Accuracy) ObserveRecall(same func(x, y relation.TID) bool) {
	if a == nil || same == nil {
		return
	}
	sample := a.truth.Sample(a.n, a.seed)
	var matched int64
	for _, p := range sample {
		if same(p[0], p[1]) {
			matched++
		}
	}
	a.recallSampled.Store(int64(len(sample)))
	a.recallMatched.Store(matched)
	if len(sample) > 0 {
		a.recG.Set(float64(matched) / float64(len(sample)))
	}
}

// AccuracyReport is the JSON form of the observatory's state.
type AccuracyReport struct {
	TruthPairs    int              `json:"truth_pairs"`
	SampledTP     int64            `json:"sampled_tp"`
	SampledFP     int64            `json:"sampled_fp"`
	Precision     float64          `json:"precision"`
	RecallSampled int64            `json:"recall_sampled"`
	RecallMatched int64            `json:"recall_matched"`
	Recall        float64          `json:"recall"`
	FPByRule      map[string]int64 `json:"fp_by_rule,omitempty"`
}

func (a *Accuracy) report() AccuracyReport {
	rep := AccuracyReport{
		TruthPairs:    a.truth.Len(),
		SampledTP:     a.tp.Load(),
		SampledFP:     a.fp.Load(),
		RecallSampled: a.recallSampled.Load(),
		RecallMatched: a.recallMatched.Load(),
	}
	// Ratios are recomputed from the counts rather than read back from
	// the gauges, which are nil when no telemetry registry is attached.
	if t := rep.SampledTP + rep.SampledFP; t > 0 {
		rep.Precision = float64(rep.SampledTP) / float64(t)
	}
	if rep.RecallSampled > 0 {
		rep.Recall = float64(rep.RecallMatched) / float64(rep.RecallSampled)
	}
	a.mu.Lock()
	if len(a.fpByRule) > 0 {
		rep.FPByRule = make(map[string]int64, len(a.fpByRule))
		for k, v := range a.fpByRule {
			rep.FPByRule[k] = v
		}
	}
	a.mu.Unlock()
	return rep
}
