package health_test

import (
	"encoding/json"
	"testing"

	"dcer/internal/eval"
	"dcer/internal/health"
	"dcer/internal/relation"
	"dcer/internal/telemetry"
	"dcer/internal/unionfind"
)

func TestSampleIDs(t *testing.T) {
	all := health.SampleIDs(5, 10, 1)
	if len(all) != 5 {
		t.Fatalf("k >= n: %d ids, want all 5", len(all))
	}
	for i, id := range all {
		if id != i {
			t.Fatalf("k >= n sample is not the identity: %v", all)
		}
	}
	a := health.SampleIDs(1000, 16, 7)
	b := health.SampleIDs(1000, 16, 7)
	if len(a) != 16 {
		t.Fatalf("bounded sample has %d ids, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("sampled id %d out of range", a[i])
		}
	}
	c := health.SampleIDs(1000, 16, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestAuditUnionFindHealthy(t *testing.T) {
	u := unionfind.New(100)
	for i := 0; i < 99; i += 2 {
		u.Union(i, i+1)
	}
	if err := health.AuditUnionFind(u, health.SampleIDs(u.Len(), u.Len(), 1)); err != nil {
		t.Fatalf("healthy forest failed the audit: %v", err)
	}
}

func TestAuditUnionFindDetectsCycle(t *testing.T) {
	u := unionfind.New(10)
	u.Union(0, 1)
	// Plant a 2-cycle: neither node is a self-parented root.
	u.SetParent(2, 3)
	u.SetParent(3, 2)
	err := health.AuditUnionFind(u, health.SampleIDs(u.Len(), u.Len(), 1))
	if err == nil {
		t.Fatal("audit passed a forest with a parent cycle")
	}
}

func TestAuditUnionFindDetectsOutOfRange(t *testing.T) {
	u := unionfind.New(10)
	u.SetParent(4, 17)
	err := health.AuditUnionFind(u, health.SampleIDs(u.Len(), u.Len(), 1))
	if err == nil {
		t.Fatal("audit passed a forest with an out-of-range parent link")
	}
}

// TestMonitorReportRoundTrip: the JSON served at /debug/health (and
// stored in bundles) must unmarshal back into an equivalent Report, since
// cmd/doctor diagnoses the decoded form.
func TestMonitorReportRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := health.NewMonitor(health.Options{Registry: reg, DiagnosisDir: t.TempDir()})
	defer m.Stop()
	c := m.Check("roundtrip_check")
	c.Pass(10)
	c.Warn(3, "a %s warning", "sample")
	m.Heartbeat("roundtrip_hb").Beat()

	rep := m.Report()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back health.Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Attached || len(back.Checks) != len(rep.Checks) || len(back.Heartbeats) != len(rep.Heartbeats) {
		t.Fatalf("round-trip lost structure: %+v", back)
	}
	var found bool
	for _, cr := range back.Checks {
		if cr.Name == "roundtrip_check" {
			found = true
			if cr.Status != health.StatusWarn.String() || cr.Samples != 13 {
				t.Errorf("check round-trip: %+v", cr)
			}
		}
	}
	if !found {
		t.Fatal("round-trip dropped the check")
	}
	// The registry exports the check's status gauge and the monitor's
	// stall counter.
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, series := range []string{"dcer_health_check_status", "dcer_health_check_violations", "dcer_health_stalls"} {
		if !names[series] {
			t.Errorf("registry snapshot lacks %s", series)
		}
	}
}

// TestAccuracyObservatory feeds the accuracy estimator a known mix of
// true and false positives and a recall probe, and checks the report and
// the per-rule false-positive attribution.
func TestAccuracyObservatory(t *testing.T) {
	truth := eval.NewTruth([][2]relation.TID{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	reg := telemetry.NewRegistry()
	m := health.NewMonitor(health.Options{Registry: reg, DiagnosisDir: t.TempDir(), Truth: truth, SampleSize: 64, Seed: 1})
	defer m.Stop()
	acc := m.Accuracy()
	if acc == nil {
		t.Fatal("Truth set but no accuracy observatory")
	}

	pairs := [][2]relation.TID{{1, 2}, {3, 4}, {9, 10}} // 2 tp, 1 fp
	acc.ObserveMatches(pairs, func(p [2]relation.TID) string {
		if p == [2]relation.TID{9, 10} {
			return "phi9"
		}
		return ""
	})
	// The engine's equivalence knows {1,2} and {3,4} but not the rest.
	acc.ObserveRecall(func(x, y relation.TID) bool {
		return (x == 1 && y == 2) || (x == 3 && y == 4)
	})

	rep := m.Report()
	a := rep.Accuracy
	if a == nil {
		t.Fatal("report lacks the accuracy section")
	}
	if a.SampledTP != 2 || a.SampledFP != 1 {
		t.Fatalf("tp=%d fp=%d, want 2 and 1", a.SampledTP, a.SampledFP)
	}
	if want := 2.0 / 3.0; a.Precision < want-1e-9 || a.Precision > want+1e-9 {
		t.Errorf("precision = %v, want %v", a.Precision, want)
	}
	if a.RecallSampled != 4 || a.RecallMatched != 2 {
		t.Fatalf("recall probe %d/%d, want 2/4", a.RecallMatched, a.RecallSampled)
	}
	if a.FPByRule["phi9"] != 1 {
		t.Errorf("false positive not attributed: %v", a.FPByRule)
	}
	// The gauges export the same values.
	found := map[string]float64{}
	for _, s := range reg.Snapshot() {
		if s.Kind == "gauge" {
			found[s.Name] = s.Value
		}
	}
	if v, ok := found["dcer_health_precision"]; !ok || v < 0.66 || v > 0.67 {
		t.Errorf("dcer_health_precision gauge = %v (present %v)", v, ok)
	}
	if v, ok := found["dcer_health_recall"]; !ok || v != 0.5 {
		t.Errorf("dcer_health_recall gauge = %v (present %v)", v, ok)
	}
}
