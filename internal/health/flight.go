package health

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Bundle file names. A complete flight-recorder bundle holds all of them;
// LoadBundle reports which are missing.
const (
	bundleManifest   = "manifest.json"
	bundleGoroutines = "goroutines.txt"
	bundleTrace      = "trace.json"
	bundleMetrics    = "metrics.json"
	bundleWideTail   = "widetail.jsonl"
	bundleHealth     = "health.json"
)

// Manifest describes one captured bundle.
type Manifest struct {
	Reason     string   `json:"reason"`
	CapturedNs int64    `json:"captured_ns"`
	Files      []string `json:"files"`
}

// CaptureBundle writes a flight-recorder bundle — goroutine dump, trace
// ring as Chrome trace-event JSON, wide-event tail, full metric snapshot,
// and the health report itself — into a fresh subdirectory of the
// diagnosis directory and returns its path. The watchdog calls this on
// stall detection; operators can call it manually for an on-demand
// snapshot.
func (m *Monitor) CaptureBundle(reason string) (string, error) {
	if m == nil {
		return "", fmt.Errorf("health: nil monitor")
	}
	seq := m.bundleSeq.Add(1)
	dir := filepath.Join(m.opts.DiagnosisDir, fmt.Sprintf("bundle-%d-%d", seq, time.Now().UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	var files []string
	write := func(name string, data []byte) error {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		files = append(files, name)
		return nil
	}

	// Goroutine dump: the stack of every goroutine, the first thing a
	// stall diagnosis reads.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	if err := write(bundleGoroutines, buf); err != nil {
		return "", err
	}

	// Trace ring as Perfetto-loadable Chrome trace JSON.
	var trace strings.Builder
	m.reg.Tracer().WriteChromeTrace(&trace)
	if err := write(bundleTrace, []byte(trace.String())); err != nil {
		return "", err
	}

	// Full registry snapshot.
	metrics, err := json.MarshalIndent(m.reg.Snapshot(), "", "  ")
	if err != nil {
		return "", err
	}
	if err := write(bundleMetrics, metrics); err != nil {
		return "", err
	}

	// Wide-event tail, one JSON line per event, oldest first.
	tail := strings.Join(m.tail.Lines(), "\n")
	if tail != "" {
		tail += "\n"
	}
	if err := write(bundleWideTail, []byte(tail)); err != nil {
		return "", err
	}

	// The health report itself.
	rep, err := json.MarshalIndent(m.Report(), "", "  ")
	if err != nil {
		return "", err
	}
	if err := write(bundleHealth, rep); err != nil {
		return "", err
	}

	man := Manifest{Reason: reason, CapturedNs: time.Now().UnixNano(), Files: files}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, bundleManifest), mb, 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// Bundle is a loaded flight-recorder bundle.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Report   Report
	// Missing lists expected files absent from the directory (empty for a
	// complete bundle).
	Missing []string
}

// LoadBundle reads a flight-recorder bundle written by CaptureBundle. It
// fails on an unreadable manifest or health report; other files are only
// checked for presence (their content is for humans and Perfetto).
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	mb, err := os.ReadFile(filepath.Join(dir, bundleManifest))
	if err != nil {
		return nil, fmt.Errorf("health: reading bundle manifest: %w", err)
	}
	if err := json.Unmarshal(mb, &b.Manifest); err != nil {
		return nil, fmt.Errorf("health: parsing bundle manifest: %w", err)
	}
	hb, err := os.ReadFile(filepath.Join(dir, bundleHealth))
	if err != nil {
		return nil, fmt.Errorf("health: reading bundle health report: %w", err)
	}
	if err := json.Unmarshal(hb, &b.Report); err != nil {
		return nil, fmt.Errorf("health: parsing bundle health report: %w", err)
	}
	for _, name := range []string{bundleGoroutines, bundleTrace, bundleMetrics, bundleWideTail} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			b.Missing = append(b.Missing, name)
		}
	}
	return b, nil
}
