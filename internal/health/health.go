// Package health is the engine's self-diagnosis layer: online invariant
// auditors, stall watchdogs with flight-recorder capture, and a live
// accuracy observatory, surfaced as a JSON report on /debug/health and
// through cmd/doctor.
//
// The engines (internal/chase, internal/dmatch) register named checks and
// heartbeats on a Monitor and drive them at quiesced boundaries — the end
// of a drain round, the top of a BSP superstep — where their state is
// stable enough to audit without locks. Everything follows the PR-3 cost
// discipline: a heartbeat is one atomic add per round, auditors touch
// sampled subsets only, and a nil Monitor (the default) costs the engines
// one branch per round.
package health

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcer/internal/eval"
	"dcer/internal/mlpred"
	"dcer/internal/telemetry"
)

// Status is the severity of a check's latest audit result.
type Status int32

const (
	// StatusPass: the latest audit found no violations.
	StatusPass Status = iota
	// StatusWarn: suspicious but not provably wrong (e.g. an extrapolated
	// byte account off by more than tolerance, an inverted predicate order).
	StatusWarn
	// StatusFail: an invariant is provably violated on the sampled subset.
	StatusFail
)

func (s Status) String() string {
	switch s {
	case StatusPass:
		return "pass"
	case StatusWarn:
		return "warn"
	case StatusFail:
		return "fail"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// ParseStatus is the inverse of Status.String.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "pass":
		return StatusPass, nil
	case "warn":
		return StatusWarn, nil
	case "fail":
		return StatusFail, nil
	}
	return StatusFail, fmt.Errorf("health: unknown status %q", s)
}

// Check is one named invariant auditor's state: the latest status, the
// cumulative violation count, and the most recent warn/fail detail (kept
// after the status recovers, so a transient violation stays diagnosable).
// All update methods are safe for concurrent use and nil-safe.
type Check struct {
	name       string
	status     atomic.Int32
	runs       atomic.Int64
	samples    atomic.Int64
	violations atomic.Int64

	mu         sync.Mutex
	detail     string
	lastBadNs  int64
	violationC *telemetry.Counter
}

// Name returns the check's registered name.
func (c *Check) Name() string { return c.name }

// Status returns the latest status.
func (c *Check) Status() Status {
	if c == nil {
		return StatusPass
	}
	return Status(c.status.Load())
}

// Violations returns the cumulative violation count.
func (c *Check) Violations() int64 {
	if c == nil {
		return 0
	}
	return c.violations.Load()
}

// Pass records a clean audit over n sampled items.
func (c *Check) Pass(n int) {
	if c == nil {
		return
	}
	c.runs.Add(1)
	c.samples.Add(int64(n))
	c.status.Store(int32(StatusPass))
}

// Warn records a suspicious audit over n sampled items with a detail line.
func (c *Check) Warn(n int, format string, args ...any) {
	c.bad(StatusWarn, n, format, args...)
}

// Fail records a violated invariant over n sampled items with a detail
// line, incrementing the violation counters.
func (c *Check) Fail(n int, format string, args ...any) {
	c.bad(StatusFail, n, format, args...)
}

func (c *Check) bad(s Status, n int, format string, args ...any) {
	if c == nil {
		return
	}
	c.runs.Add(1)
	c.samples.Add(int64(n))
	c.status.Store(int32(s))
	if s == StatusFail {
		c.violations.Add(1)
		c.violationC.Inc()
	}
	c.mu.Lock()
	c.detail = fmt.Sprintf(format, args...)
	c.lastBadNs = time.Now().UnixNano()
	c.mu.Unlock()
}

// Detail returns the most recent warn/fail detail ("" if always clean).
func (c *Check) Detail() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.detail
}

func (c *Check) report() CheckReport {
	c.mu.Lock()
	detail, badNs := c.detail, c.lastBadNs
	c.mu.Unlock()
	return CheckReport{
		Name:       c.name,
		Status:     c.Status().String(),
		Runs:       c.runs.Load(),
		Samples:    c.samples.Load(),
		Violations: c.violations.Load(),
		Detail:     detail,
		LastBadNs:  badNs,
	}
}

// Options configures a Monitor.
type Options struct {
	// Registry receives the health metric series
	// (dcer_health_check_status, dcer_health_check_violations,
	// dcer_health_stalls, accuracy gauges) and the /debug/health provider,
	// and is snapshotted into flight-recorder bundles. Nil disables metric
	// export but the monitor still works.
	Registry *telemetry.Registry
	// Log, when set, gets a bounded wide-event tail attached so stall
	// bundles carry the rounds leading up to the wedge.
	Log *telemetry.Logger
	// StallDeadline is how long a started heartbeat may go without a beat
	// before the watchdog declares a stall. 0 means DefaultStallDeadline
	// (generous, so slow CI hosts never false-positive); positive values
	// below MinStallDeadline are clamped up to it.
	StallDeadline time.Duration
	// PollInterval is the watchdog's wake cadence. 0 derives it from the
	// deadline (deadline/8, clamped to [MinPollInterval, MaxPollInterval]).
	PollInterval time.Duration
	// DiagnosisDir is where flight-recorder bundles are written
	// ("" means DefaultDiagnosisDir under the working directory).
	DiagnosisDir string
	// SampleSize bounds each auditor's per-run sample (0 means
	// DefaultSampleSize).
	SampleSize int
	// Seed makes auditor sampling reproducible.
	Seed int64
	// Truth, when set, enables the live accuracy observatory: sampled Γ
	// pairs are scored against it and precision/recall gauges exported.
	Truth *eval.Truth
	// Classifiers, when set, has score calibration enabled on every
	// registered classifier; snapshots appear in the health report.
	Classifiers *mlpred.Registry
	// WideTailCap bounds the attached wide-event tail (0 means
	// telemetry.DefaultWideTailCap).
	WideTailCap int
}

// Defaults for Options fields.
const (
	DefaultSampleSize   = 64
	DefaultDiagnosisDir = "dcer-health"
)

// Monitor owns the checks, heartbeats and the accuracy observatory of one
// process, runs the watchdog goroutine, and renders the health report.
// All methods are nil-safe; a nil *Monitor is the disabled mode.
type Monitor struct {
	opts Options
	reg  *telemetry.Registry

	mu      sync.Mutex
	checks  map[string]*Check
	order   []string
	hbs     map[string]*Heartbeat
	hborder []string
	calib   map[string]*mlpred.Calibration

	acc  *Accuracy
	tail *telemetry.WideTail

	stallC     *telemetry.Counter
	stalls     atomic.Int64
	stallCheck *Check

	bundleSeq  atomic.Int64
	lastBundle atomic.Pointer[string]

	stop chan struct{}
	done chan struct{}
}

// NewMonitor creates a monitor, attaches it to the registry's
// /debug/health provider, enables classifier calibration and the accuracy
// observatory when configured, and registers the stall watchdog's own
// check. Call Start to run the watchdog goroutine.
func NewMonitor(opts Options) *Monitor {
	if opts.SampleSize <= 0 {
		opts.SampleSize = DefaultSampleSize
	}
	if opts.DiagnosisDir == "" {
		opts.DiagnosisDir = DefaultDiagnosisDir
	}
	m := &Monitor{
		opts:   opts,
		reg:    opts.Registry,
		checks: make(map[string]*Check),
		hbs:    make(map[string]*Heartbeat),
	}
	m.stallC = m.reg.Counter("dcer_health_stalls")
	m.stallCheck = m.Check("stall_watchdog")
	if opts.Log != nil {
		m.tail = telemetry.NewWideTail(opts.WideTailCap)
		opts.Log.AttachWideTail(m.tail)
	}
	if opts.Truth != nil {
		m.acc = newAccuracy(opts.Truth, opts.SampleSize, opts.Seed, m.reg)
	}
	if opts.Classifiers != nil {
		m.calib = opts.Classifiers.EnableCalibration()
	}
	m.reg.SetHealth(func() any { return m.Report() })
	return m
}

// Check returns the named check, registering it on first use. Checks get
// a dcer_health_check_status gauge (0 pass / 1 warn / 2 fail) and a
// dcer_health_check_violations counter on the registry.
func (m *Monitor) Check(name string) *Check {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.checks[name]; ok {
		return c
	}
	c := &Check{name: name}
	c.violationC = m.reg.Counter("dcer_health_check_violations", telemetry.Label{Key: "check", Value: name})
	m.reg.GaugeFunc("dcer_health_check_status", func() float64 {
		return float64(c.status.Load())
	}, telemetry.Label{Key: "check", Value: name})
	m.checks[name] = c
	m.order = append(m.order, name)
	return c
}

// Heartbeat returns the named heartbeat, registering it on first use.
func (m *Monitor) Heartbeat(name string) *Heartbeat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hbs[name]; ok {
		return h
	}
	h := &Heartbeat{name: name}
	m.hbs[name] = h
	m.hborder = append(m.hborder, name)
	return h
}

// Accuracy returns the live accuracy observatory, or nil when no ground
// truth was configured.
func (m *Monitor) Accuracy() *Accuracy {
	if m == nil {
		return nil
	}
	return m.acc
}

// SampleSize returns the configured per-audit sample bound.
func (m *Monitor) SampleSize() int {
	if m == nil {
		return 0
	}
	return m.opts.SampleSize
}

// Seed returns the configured sampling seed.
func (m *Monitor) Seed() int64 {
	if m == nil {
		return 0
	}
	return m.opts.Seed
}

// Report renders the full health document (the /debug/health body).
func (m *Monitor) Report() Report {
	if m == nil {
		return Report{}
	}
	rep := Report{
		Attached:    true,
		GeneratedNs: time.Now().UnixNano(),
		Stalls:      m.stalls.Load(),
		Bundles:     m.bundleSeq.Load(),
	}
	if p := m.lastBundle.Load(); p != nil {
		rep.LastBundle = *p
	}
	m.mu.Lock()
	checks := make([]*Check, 0, len(m.order))
	for _, name := range m.order {
		checks = append(checks, m.checks[name])
	}
	hbs := make([]*Heartbeat, 0, len(m.hborder))
	for _, name := range m.hborder {
		hbs = append(hbs, m.hbs[name])
	}
	calib := make([]*mlpred.Calibration, 0, len(m.calib))
	for _, c := range m.calib {
		calib = append(calib, c)
	}
	m.mu.Unlock()
	for _, c := range checks {
		rep.Checks = append(rep.Checks, c.report())
	}
	sort.Slice(rep.Checks, func(i, j int) bool { return rep.Checks[i].Name < rep.Checks[j].Name })
	for _, h := range hbs {
		rep.Heartbeats = append(rep.Heartbeats, h.report())
	}
	sort.Slice(rep.Heartbeats, func(i, j int) bool { return rep.Heartbeats[i].Name < rep.Heartbeats[j].Name })
	if m.acc != nil {
		a := m.acc.report()
		rep.Accuracy = &a
	}
	for _, c := range calib {
		rep.Calibration = append(rep.Calibration, c.Snapshot())
	}
	sort.Slice(rep.Calibration, func(i, j int) bool {
		return rep.Calibration[i].Classifier < rep.Calibration[j].Classifier
	})
	return rep
}

// CheckReport is the JSON form of one check's state.
type CheckReport struct {
	Name       string `json:"name"`
	Status     string `json:"status"`
	Runs       int64  `json:"runs"`
	Samples    int64  `json:"samples"`
	Violations int64  `json:"violations"`
	Detail     string `json:"detail,omitempty"`
	LastBadNs  int64  `json:"last_bad_ns,omitempty"`
}

// HeartbeatReport is the JSON form of one heartbeat's state.
type HeartbeatReport struct {
	Name   string `json:"name"`
	Beats  int64  `json:"beats"`
	Active bool   `json:"active"`
}

// Report is the full health document served at /debug/health, embedded in
// flight-recorder bundles, and consumed by cmd/doctor.
type Report struct {
	Attached    bool                   `json:"attached"`
	GeneratedNs int64                  `json:"generated_ns"`
	Checks      []CheckReport          `json:"checks,omitempty"`
	Heartbeats  []HeartbeatReport      `json:"heartbeats,omitempty"`
	Stalls      int64                  `json:"stalls"`
	Bundles     int64                  `json:"bundles"`
	LastBundle  string                 `json:"last_bundle,omitempty"`
	Accuracy    *AccuracyReport        `json:"accuracy,omitempty"`
	Calibration []mlpred.CalibSnapshot `json:"calibration,omitempty"`
}
