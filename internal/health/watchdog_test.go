package health

import (
	"testing"
	"testing/quick"
	"time"
)

// TestResolveDeadlineProperties property-tests the deadline knob: any
// configured value resolves to something the watchdog can actually use —
// nonpositive means the generous default, positives never clamp below the
// floor, and values at or above the floor pass through untouched.
func TestResolveDeadlineProperties(t *testing.T) {
	prop := func(raw int64) bool {
		d := time.Duration(raw)
		got := resolveDeadline(d)
		switch {
		case d <= 0:
			return got == DefaultStallDeadline
		case d < MinStallDeadline:
			return got == MinStallDeadline
		default:
			return got == d
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if got := resolveDeadline(0); got != DefaultStallDeadline {
		t.Errorf("resolveDeadline(0) = %v, want %v", got, DefaultStallDeadline)
	}
	if got := resolveDeadline(time.Nanosecond); got != MinStallDeadline {
		t.Errorf("resolveDeadline(1ns) = %v, want the %v floor", got, MinStallDeadline)
	}
}

// TestResolvePollProperties property-tests the derived wake cadence: for
// any poll knob and any resolved deadline, the cadence stays within
// [MinPollInterval, MaxPollInterval] and never exceeds the deadline — so
// a stall is always detected within one deadline plus one poll.
func TestResolvePollProperties(t *testing.T) {
	prop := func(rawPoll, rawDeadline int64) bool {
		deadline := resolveDeadline(time.Duration(rawDeadline))
		p := resolvePoll(time.Duration(rawPoll), deadline)
		return p >= MinPollInterval && p <= MaxPollInterval && p <= deadline
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// An unset knob derives deadline/8.
	if got := resolvePoll(0, 80*time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("resolvePoll(0, 80ms) = %v, want 10ms", got)
	}
}

// TestWatchdogNoFalsePositive drives the watchdog scan with an injected
// clock over a heartbeat that keeps beating: no matter how much simulated
// time passes between scans, a progressing loop must never be declared
// stalled.
func TestWatchdogNoFalsePositive(t *testing.T) {
	m := NewMonitor(Options{DiagnosisDir: t.TempDir()})
	defer m.Stop()
	hb := m.Heartbeat("loop")
	hb.Enter()
	defer hb.Exit()

	const deadline = 50 * time.Millisecond
	states := make(map[*Heartbeat]*wdState)
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		hb.Beat()
		now = now.Add(deadline * 3) // each scan is far past the deadline, but beats moved
		m.pollOnce(states, now, deadline)
	}
	if got := m.Report().Stalls; got != 0 {
		t.Fatalf("progressing heartbeat produced %d stall(s)", got)
	}
	if st := m.stallCheck.Status(); st != StatusPass {
		t.Fatalf("stall_watchdog status = %v, want pass", st)
	}
}

// TestWatchdogIdleNeverStalls: a heartbeat outside its Enter/Exit bracket
// is idle and must not alarm however long it sits.
func TestWatchdogIdleNeverStalls(t *testing.T) {
	m := NewMonitor(Options{DiagnosisDir: t.TempDir()})
	defer m.Stop()
	m.Heartbeat("idle_loop")

	const deadline = 50 * time.Millisecond
	states := make(map[*Heartbeat]*wdState)
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		now = now.Add(time.Hour)
		m.pollOnce(states, now, deadline)
	}
	if got := m.Report().Stalls; got != 0 {
		t.Fatalf("idle heartbeat produced %d stall(s)", got)
	}
}

// TestWatchdogForcedStall wedges a heartbeat (active, no beats) under an
// injected clock and asserts the full stall pipeline: exactly one stall
// and one flight-recorder bundle per episode, a complete loadable bundle,
// a diagnosis that fails, recovery of the check when beats resume, and a
// second episode counted separately.
func TestWatchdogForcedStall(t *testing.T) {
	dir := t.TempDir()
	m := NewMonitor(Options{DiagnosisDir: dir})
	defer m.Stop()
	hb := m.Heartbeat("wedged")
	hb.Enter()
	defer hb.Exit()

	const deadline = 50 * time.Millisecond
	states := make(map[*Heartbeat]*wdState)
	now := time.Unix(0, 0)
	m.pollOnce(states, now, deadline) // arms the state
	for i := 0; i < 5; i++ {
		now = now.Add(deadline)
		m.pollOnce(states, now, deadline)
	}
	rep := m.Report()
	if rep.Stalls != 1 {
		t.Fatalf("wedged heartbeat: %d stall(s), want exactly 1 per episode", rep.Stalls)
	}
	if rep.Bundles != 1 || rep.LastBundle == "" {
		t.Fatalf("stall captured %d bundle(s) (last %q), want 1", rep.Bundles, rep.LastBundle)
	}

	b, err := LoadBundle(rep.LastBundle)
	if err != nil {
		t.Fatalf("LoadBundle(%s): %v", rep.LastBundle, err)
	}
	if len(b.Missing) != 0 {
		t.Errorf("bundle incomplete, missing %v", b.Missing)
	}
	if b.Manifest.Reason != "stall:wedged" {
		t.Errorf("bundle reason = %q, want stall:wedged", b.Manifest.Reason)
	}
	if !b.Report.Attached {
		t.Error("bundle health report does not round-trip Attached")
	}
	if d := Diagnose(rep); d.Healthy() {
		t.Error("diagnosis of a stalled process reports healthy")
	}

	// Progress resumes: the check recovers but the history stays.
	hb.Beat()
	now = now.Add(time.Millisecond)
	m.pollOnce(states, now, deadline)
	if st := m.stallCheck.Status(); st != StatusPass {
		t.Fatalf("stall_watchdog did not recover after beats resumed: %v", st)
	}
	if d := Diagnose(m.Report()); d.Healthy() {
		t.Error("recovered stall check erased the violation history from the diagnosis")
	}

	// A second wedge is a new episode: one more stall, one more bundle.
	for i := 0; i < 5; i++ {
		now = now.Add(deadline)
		m.pollOnce(states, now, deadline)
	}
	rep = m.Report()
	if rep.Stalls != 2 || rep.Bundles != 2 {
		t.Fatalf("second episode: stalls=%d bundles=%d, want 2 and 2", rep.Stalls, rep.Bundles)
	}
}

// TestWatchdogLive runs the real goroutine end to end with the clamped
// minimum deadline: a wedged heartbeat must be detected, and Stop must
// terminate the goroutine cleanly.
func TestWatchdogLive(t *testing.T) {
	m := NewMonitor(Options{DiagnosisDir: t.TempDir(), StallDeadline: MinStallDeadline})
	m.Start()
	m.Start() // idempotent
	hb := m.Heartbeat("live")
	hb.Enter()
	deadline := time.Now().Add(5 * time.Second)
	for m.Report().Stalls == 0 && time.Now().Before(deadline) {
		time.Sleep(MinStallDeadline / 2)
	}
	hb.Exit()
	m.Stop()
	m.Stop() // idempotent
	if got := m.Report().Stalls; got == 0 {
		t.Fatal("live watchdog never detected the wedged heartbeat")
	}
}
