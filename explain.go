package dcer

import (
	"fmt"
	"strings"

	"dcer/internal/complexity"
	"dcer/internal/relation"
)

// Explanation is a human-readable proof that two tuples denote the same
// entity: the ordered rule applications (with their valuations) that
// derive the match, ending with the target pair. It is the proof graph of
// the paper's Theorem 2 rendered for people.
type Explanation struct {
	Target [2]TID
	Steps  []ExplanationStep
}

// ExplanationStep is one rule application in a proof.
type ExplanationStep struct {
	Rule      string
	IsMatch   bool
	Model     string
	A, B      TID
	Valuation []TID
}

// Explain derives why tuples a and b match under the rules, by running the
// reference chase with justification tracking and extracting the minimal
// proof. It returns nil (and no error) when the pair does not match.
//
// The reference chase enumerates valuations by brute force, so Explain is
// meant for interactive use on moderate data — to audit a production-run
// match, Explain the fragment containing the relevant tuples.
func Explain(d *Dataset, rules []*Rule, reg *ClassifierRegistry, a, b TID) (*Explanation, error) {
	res, err := complexity.NaiveChase(d, rules, reg)
	if err != nil {
		return nil, err
	}
	proof := complexity.ProofOf(res, [2]relation.TID{a, b})
	if proof == nil {
		return nil, nil
	}
	ex := &Explanation{Target: [2]TID{a, b}}
	for _, f := range proof {
		ex.Steps = append(ex.Steps, ExplanationStep{
			Rule:      f.Rule,
			IsMatch:   f.IsMatch,
			Model:     f.Model,
			A:         f.A,
			B:         f.B,
			Valuation: f.Valuation,
		})
	}
	return ex, nil
}

// Render formats the explanation against the dataset, one line per step,
// identifying tuples by relation name and id value.
func (e *Explanation) Render(d *Dataset) string {
	name := func(gid TID) string {
		t := d.Tuple(gid)
		if t == nil {
			return fmt.Sprintf("#%d", gid)
		}
		s := d.SchemaOf(t)
		return fmt.Sprintf("%s(%s)", s.Name, t.ID(s))
	}
	var b strings.Builder
	for i, st := range e.Steps {
		if st.IsMatch {
			fmt.Fprintf(&b, "%2d. rule %s matches %s = %s\n", i+1, st.Rule, name(st.A), name(st.B))
		} else {
			fmt.Fprintf(&b, "%2d. rule %s validates %s(%s, %s)\n", i+1, st.Rule, st.Model, name(st.A), name(st.B))
		}
	}
	fmt.Fprintf(&b, " ⇒  %s = %s\n", name(e.Target[0]), name(e.Target[1]))
	return b.String()
}
