package dcer

import (
	"errors"
	"fmt"
	"strings"

	"dcer/internal/chase"
	"dcer/internal/complexity"
	"dcer/internal/provenance"
	"dcer/internal/relation"
)

// ErrNoMatch reports that the queried pair is not matched under the rules
// — there is no proof to extract. It is distinct from
// ErrProvenanceIncomplete ("the pair may match, but no derivation was
// recorded"), which Explain resolves internally by falling back to the
// reference chase.
var ErrNoMatch = errors.New("dcer: tuples do not match under the rules")

// ErrProvenanceIncomplete reports that a justification log cannot supply
// a full proof: capture was off, or the bounded log overflowed and
// dropped derivations.
var ErrProvenanceIncomplete = provenance.ErrIncomplete

// Explanation is a human-readable proof that two tuples denote the same
// entity: the ordered rule applications (with their valuations) that
// derive the match, ending with the target pair. It is the proof graph of
// the paper's Theorem 2 rendered for people.
type Explanation struct {
	Target [2]TID
	Steps  []ExplanationStep
}

// ExplanationStep is one rule application in a proof.
type ExplanationStep struct {
	Rule      string
	IsMatch   bool
	Model     string
	A, B      TID
	Valuation []TID
	// Origin says how the fact entered Γ ("rule", "dep", "external",
	// "id-dup"); empty for proofs extracted by the reference chase.
	Origin string
	// Checks are the ML predicate outcomes the step consumed directly
	// from the classifiers.
	Checks []MLCheck
	// Worker and Superstep locate the derivation in a parallel run
	// (-1/0 for a sequential engine).
	Worker    int
	Superstep int
}

// Explain derives why tuples a and b match under the rules by running the
// production chase with justification capture and extracting the minimal
// proof from the recorded log. It returns ErrNoMatch when the pair does
// not match. Only if the bounded log overflows (so the proof has holes)
// does it fall back to the brute-force reference chase.
func Explain(d *Dataset, rules []*Rule, reg *ClassifierRegistry, a, b TID) (*Explanation, error) {
	log := provenance.NewLog(0)
	eng, err := chase.New(d, rules, reg, chase.Options{ShareIndexes: true, Provenance: log})
	if err != nil {
		return nil, err
	}
	eng.Run()
	ex, err := explainFromProof(log.Proof([2]relation.TID{a, b}, eng.BaseEquivalence()))
	if errors.Is(err, provenance.ErrIncomplete) {
		return explainNaive(d, rules, reg, a, b)
	}
	if err != nil {
		return nil, err
	}
	ex.Target = [2]TID{a, b}
	return ex, nil
}

// ExplainParallel answers the same question from a parallel run: it
// executes DMatch with per-worker justification capture and extracts the
// proof — including derivation chains that cross workers — from the
// stitched global log. opts.Provenance is forced on.
func ExplainParallel(d *Dataset, rules []*Rule, reg *ClassifierRegistry, opts ParallelOptions, a, b TID) (*Explanation, error) {
	opts.Provenance = true
	res, err := MatchParallel(d, rules, reg, opts)
	if err != nil {
		return nil, err
	}
	ex, err := explainFromProof(res.Proof(a, b))
	if errors.Is(err, provenance.ErrIncomplete) {
		return explainNaive(d, rules, reg, a, b)
	}
	if err != nil {
		return nil, err
	}
	ex.Target = [2]TID{a, b}
	return ex, nil
}

// ExplainFromLog extracts a proof of (a, b) from an existing justification
// log — e.g. the log of an engine or DMatch run the caller already
// executed with provenance on — without re-running any chase. It returns
// ErrNoMatch for unmatched pairs and ErrProvenanceIncomplete when the log
// cannot supply the full derivation.
func ExplainFromLog(log *ProvenanceLog, d *Dataset, a, b TID) (*Explanation, error) {
	ex, err := explainFromProof(log.Proof([2]relation.TID{a, b}, chase.BuildEquivalence(d, nil)))
	if err != nil {
		return nil, err
	}
	ex.Target = [2]TID{a, b}
	return ex, nil
}

// explainFromProof converts an extracted proof to an Explanation,
// translating provenance errors (the target is filled in by the caller).
func explainFromProof(proof []provenance.Entry, err error) (*Explanation, error) {
	if errors.Is(err, provenance.ErrNotEntailed) {
		return nil, ErrNoMatch
	}
	if err != nil {
		return nil, err
	}
	ex := &Explanation{}
	for _, en := range proof {
		ex.Steps = append(ex.Steps, ExplanationStep{
			Rule:      en.Rule,
			IsMatch:   en.Fact.Kind == provenance.KindMatch,
			Model:     en.Fact.Model,
			A:         en.Fact.A,
			B:         en.Fact.B,
			Valuation: en.Valuation,
			Origin:    en.Origin.String(),
			Checks:    en.Checks,
			Worker:    en.Worker,
			Superstep: en.Step,
		})
	}
	return ex, nil
}

// explainNaive is the reference-chase fallback: brute-force enumeration
// with justification tracking (complexity.NaiveChase), usable when the
// production log is unavailable or overflowed. Meant for moderate data.
func explainNaive(d *Dataset, rules []*Rule, reg *ClassifierRegistry, a, b TID) (*Explanation, error) {
	res, err := complexity.NaiveChase(d, rules, reg)
	if err != nil {
		return nil, err
	}
	proof := complexity.ProofOf(res, [2]relation.TID{a, b})
	if proof == nil {
		return nil, ErrNoMatch
	}
	ex := &Explanation{Target: [2]TID{a, b}}
	for _, f := range proof {
		ex.Steps = append(ex.Steps, ExplanationStep{
			Rule:      f.Rule,
			IsMatch:   f.IsMatch,
			Model:     f.Model,
			A:         f.A,
			B:         f.B,
			Valuation: f.Valuation,
			Worker:    -1,
		})
	}
	return ex, nil
}

// Render formats the explanation against the dataset, one line per step,
// identifying tuples by relation name and id value. Steps derived in a
// parallel run are annotated with their worker and superstep.
func (e *Explanation) Render(d *Dataset) string {
	name := func(gid TID) string {
		t := d.Tuple(gid)
		if t == nil {
			return fmt.Sprintf("#%d", gid)
		}
		s := d.SchemaOf(t)
		return fmt.Sprintf("%s(%s)", s.Name, t.ID(s))
	}
	var b strings.Builder
	for i, st := range e.Steps {
		fmt.Fprintf(&b, "%2d. ", i+1)
		switch {
		case st.Rule != "" && st.IsMatch:
			fmt.Fprintf(&b, "rule %s matches %s = %s", st.Rule, name(st.A), name(st.B))
		case st.Rule != "":
			fmt.Fprintf(&b, "rule %s validates %s(%s, %s)", st.Rule, st.Model, name(st.A), name(st.B))
		case st.Origin == "id-dup":
			fmt.Fprintf(&b, "shared id value: %s = %s", name(st.A), name(st.B))
		case st.Origin == "external":
			fmt.Fprintf(&b, "routed fact: %s = %s", name(st.A), name(st.B))
		case st.IsMatch:
			fmt.Fprintf(&b, "matches %s = %s", name(st.A), name(st.B))
		default:
			fmt.Fprintf(&b, "validates %s(%s, %s)", st.Model, name(st.A), name(st.B))
		}
		for _, c := range st.Checks {
			fmt.Fprintf(&b, " [%s(%s, %s)]", c.Model, name(c.A), name(c.B))
		}
		if st.Worker >= 0 {
			fmt.Fprintf(&b, "  (worker %d, step %d)", st.Worker, st.Superstep)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, " ⇒  %s = %s\n", name(e.Target[0]), name(e.Target[1]))
	return b.String()
}
