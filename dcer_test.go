package dcer_test

import (
	"testing"

	"dcer"
)

// TestPublicAPIQuickstart exercises the README quick-start end to end
// through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	db := dcer.MustDatabase(
		dcer.MustSchema("Customers", "cno",
			dcer.Attr("cno", dcer.TypeString),
			dcer.Attr("name", dcer.TypeString),
			dcer.Attr("phone", dcer.TypeString)))
	d := dcer.NewDataset(db)
	t1 := d.MustAppend("Customers", dcer.S("c1"), dcer.S("Ford Smith"), dcer.S("555"))
	t2 := d.MustAppend("Customers", dcer.S("c2"), dcer.S("F. Smith"), dcer.S("555"))
	t3 := d.MustAppend("Customers", dcer.S("c3"), dcer.S("Jane Doe"), dcer.S("777"))

	rules, err := dcer.ParseRules(`
	    r1: Customers(a) ^ Customers(b) ^ a.phone = b.phone ^
	        nameabbrev(a.name, b.name) -> a.id = b.id`, db)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dcer.Match(d, rules, dcer.DefaultClassifiers())
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Same(t1.GID, t2.GID) {
		t.Error("c1 and c2 should match")
	}
	if eng.Same(t1.GID, t3.GID) {
		t.Error("c1 and c3 should not match")
	}
	classes := eng.Classes()
	if len(classes) != 1 || len(classes[0]) != 2 {
		t.Errorf("Classes = %v", classes)
	}
}

// TestPublicAPIParallel exercises MatchParallel and the evaluation
// helpers through the facade.
func TestPublicAPIParallel(t *testing.T) {
	db := dcer.MustDatabase(
		dcer.MustSchema("R", "k",
			dcer.Attr("k", dcer.TypeString),
			dcer.Attr("v", dcer.TypeString)))
	d := dcer.NewDataset(db)
	var truthPairs [][2]dcer.TID
	for i := 0; i < 30; i++ {
		a := d.MustAppend("R", dcer.S(k(i, "a")), dcer.S(k(i, "val")))
		b := d.MustAppend("R", dcer.S(k(i, "b")), dcer.S(k(i, "val")))
		truthPairs = append(truthPairs, [2]dcer.TID{a.GID, b.GID})
	}
	rules, err := dcer.ParseRules(`r: R(a) ^ R(b) ^ a.v = b.v -> a.id = b.id`, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dcer.MatchParallel(d, rules, dcer.DefaultClassifiers(),
		dcer.ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := dcer.EvaluateClasses(res.Classes(), dcer.NewTruth(truthPairs))
	if m.F1 != 1 {
		t.Errorf("parallel facade run: %s", m)
	}
}

// TestPublicAPISoft exercises the soft extension through the facade.
func TestPublicAPISoft(t *testing.T) {
	db := dcer.MustDatabase(
		dcer.MustSchema("R", "k",
			dcer.Attr("k", dcer.TypeString),
			dcer.Attr("v", dcer.TypeString)))
	d := dcer.NewDataset(db)
	a := d.MustAppend("R", dcer.S("k1"), dcer.S("x"))
	b := d.MustAppend("R", dcer.S("k2"), dcer.S("x"))
	rules, err := dcer.ParseRules(`r: R(a) ^ R(b) ^ a.v = b.v -> a.id = b.id`, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dcer.MatchSoft(d, []dcer.SoftRule{{Rule: rules[0], Confidence: 0.7}},
		dcer.DefaultClassifiers(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.P(a.GID, b.GID); p != 0.7 {
		t.Errorf("soft score = %v, want 0.7", p)
	}
}

func k(i int, suffix string) string {
	return suffix + string(rune('A'+i%26)) + string(rune('a'+i/26))
}
