// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI), plus ablation benches for the design choices
// called out in DESIGN.md (MQO sharing, dependency-store capacity,
// replication cap). Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment drivers live in internal/experiments and are shared
// with cmd/experiments, which prints the full tables.
package dcer_test

import (
	"reflect"
	"strconv"
	"testing"

	"dcer"
	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/experiments"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
)

// benchCfg keeps every driver at bench scale.
var benchCfg = experiments.Config{Scale: 0.1, Workers: 8, Seed: 1}

func BenchmarkTableV_Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableV(benchCfg)
	}
}

func BenchmarkTableVI_VaryDup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableVI(benchCfg)
	}
}

func BenchmarkFig6ab_Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6AB(benchCfg)
	}
}

func BenchmarkFig6cd_VaryDup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6CD(benchCfg)
	}
}

func BenchmarkFig6ef_VaryPredicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6EF(benchCfg)
	}
}

func BenchmarkFig6gh_VaryRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6GH(benchCfg)
	}
}

func BenchmarkFig6ij_VaryWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6IJ(benchCfg)
	}
}

func BenchmarkFig6kl_VaryScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6KL(experiments.Config{Scale: 0.05, Workers: 8, Seed: 1})
	}
}

func BenchmarkExp2_Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Partitioning(benchCfg)
	}
}

// --- Component benchmarks -------------------------------------------------

func tpchFixture(b *testing.B, scale float64) (*datagen.Generated, []*dcer.Rule) {
	b.Helper()
	if testing.Short() && scale > 0.5 {
		b.Skipf("scale %.1f fixture is heavyweight; run benchmarks without -short", scale)
	}
	g := datagen.TPCH(datagen.TPCHOptions{Scale: scale, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		b.Fatal(err)
	}
	return g, rules
}

// BenchmarkDeduceParallel measures the first-pass Deduce hot path on a
// multi-rule workload of ≥50k tuples (TPCH scale 2.0 ≈ 57k tuples, 6
// rules), sequential rule enumeration vs the concurrent
// snapshot-enumerate-merge pass, and asserts both reach the identical
// equivalence relation. The seed (pre-optimization) numbers live in
// BENCH_1.json for trajectory comparisons.
func BenchmarkDeduceParallel(b *testing.B) {
	g, rules := tpchFixture(b, 2.0)
	classes := make(map[string]string)
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"sequential", true}, {"concurrent", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var last *chase.Engine
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, mlpred.DefaultRegistry(),
					chase.Options{ShareIndexes: true, SequentialDeduce: mode.seq})
				if err != nil {
					b.Fatal(err)
				}
				eng.Deduce()
				last = eng
			}
			b.StopTimer()
			classes[mode.name] = dcer.CanonicalClasses(last.Classes())
		})
	}
	if a, c := classes["sequential"], classes["concurrent"]; a != "" && c != "" && a != c {
		b.Fatal("sequential and concurrent Deduce disagree on the equivalence classes")
	}
}

// BenchmarkIncDeduce measures the incremental algorithm A_Δ: a full
// chase's facts are replayed through IncDeduce into a fresh engine, which
// exercises the update-driven drain that dominates the Fig. 6 drivers —
// with the batched parallel drain (default) and the sequential drain as
// A/B. Both must converge to the full chase's equivalence classes.
func BenchmarkIncDeduce(b *testing.B) {
	g, rules := tpchFixture(b, 0.2)
	reg := mlpred.DefaultRegistry()
	base, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true})
	if err != nil {
		b.Fatal(err)
	}
	facts := base.Deduce()
	want := dcer.CanonicalClasses(base.Classes())
	for _, mode := range []struct {
		name string
		opts chase.Options
	}{
		// An explicit DrainParallelMin forces the batched path even where
		// the default would fall back to sequential (GOMAXPROCS=1 hosts).
		{"parallel", chase.Options{ShareIndexes: true, DrainParallelMin: chase.DefaultDrainParallelMin}},
		{"sequential", chase.Options{ShareIndexes: true, SequentialDrain: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last *chase.Engine
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				eng.IncDeduce(facts)
				last = eng
			}
			b.StopTimer()
			if got := dcer.CanonicalClasses(last.Classes()); got != want {
				b.Fatal("IncDeduce classes diverge from the full chase")
			}
		})
	}
}

// BenchmarkSequentialMatch measures the sequential Match engine on TPCH.
func BenchmarkSequentialMatch(b *testing.B) {
	g, rules := tpchFixture(b, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := chase.New(g.D, rules, mlpred.DefaultRegistry(), chase.Options{ShareIndexes: true})
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkParallelDMatch measures the BSP engine at several worker counts
// (the Theorem 7 parallel-scalability claim in benchmark form).
func BenchmarkParallelDMatch(b *testing.B) {
	g, rules := tpchFixture(b, 0.2)
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(),
					dmatch.Options{Workers: n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHyPart measures partitioning alone: the MQO-sharing ablation,
// the seed-era reference partitioner, and the packed-key rewrite at 1 and
// 8 shards. Before any timing it asserts the sharded pass is byte-
// identical to the sequential one (the tentpole equivalence guard CI runs
// as a bench smoke).
func BenchmarkHyPart(b *testing.B) {
	g, rules := tpchFixture(b, 0.2)
	seq, err := hypart.Partition(g.D, rules, 16, hypart.Options{Share: true, Shards: 1})
	if err != nil {
		b.Fatal(err)
	}
	par, err := hypart.Partition(g.D, rules, 16, hypart.Options{Share: true, Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Fragments, par.Fragments) ||
		!reflect.DeepEqual(seq.RuleFragments, par.RuleFragments) {
		b.Fatal("sharded Partition diverges from the sequential path")
	}
	for _, share := range []bool{true, false} {
		name := "mqo"
		if !share {
			name = "noMQO"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hypart.Partition(g.D, rules, 16, hypart.Options{Share: share}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hypart.PartitionReference(g.D, rules, 16, hypart.Options{Share: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hypart.Partition(g.D, rules, 16, hypart.Options{Share: true, Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDepStore sweeps the dependency-store capacity K: K=0
// forces the update-driven re-scan path everywhere.
func BenchmarkAblationDepStore(b *testing.B) {
	g, rules := tpchFixture(b, 0.1)
	for _, k := range []int{-1, 1, 1024, 1 << 20} {
		b.Run(itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, mlpred.DefaultRegistry(),
					chase.Options{ShareIndexes: true, MaxDeps: k})
				if err != nil {
					b.Fatal(err)
				}
				eng.Run()
			}
		})
	}
}

// BenchmarkAblationReplicationCap sweeps HyPart's replication cap: higher
// caps spread wide rules over more blocks at the price of more copies.
func BenchmarkAblationReplicationCap(b *testing.B) {
	g, rules := tpchFixture(b, 0.1)
	for _, rc := range []int{1, 2, 4, 8} {
		b.Run(itoa(rc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dmatch.Run(g.D, rules, mlpred.DefaultRegistry(),
					dmatch.Options{Workers: 8, ReplicationCap: rc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMLPredicates measures the classifier battery on product
// descriptions (the dominant per-valuation cost).
func BenchmarkMLPredicates(b *testing.B) {
	a := "ThinkPad X1 Carbon 7th Gen : 14-Inch, 16GB RAM, 512GB Nvme SSD"
	c := "ThinkPad X1 Carbon 7th Gen 14\" - 16 GB RAM - 512 GB SSD"
	b.Run("jaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlpred.Jaccard(a, c)
		}
	})
	b.Run("jaro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlpred.JaroWinkler(a, c)
		}
	})
	b.Run("levenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlpred.Levenshtein(a, c)
		}
	})
	b.Run("embedding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlpred.EmbeddingSim(a, c, mlpred.EmbeddingDim)
		}
	})
}

func itoa(n int) string { return strconv.Itoa(n) }
