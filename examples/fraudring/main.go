// Fraudring: a larger synthetic version of the paper's motivating
// scenario. An e-commerce marketplace hosts accounts, shops and orders;
// fraud rings register duplicate accounts (noisy copies of one identity),
// open shops under them, and boost sales by cross-buying their own
// products. Plain per-table matching cannot expose the rings — the
// duplicate accounts only become visible once shops and orders are
// correlated collectively and recursively. Run with:
//
//	go run ./examples/fraudring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dcer"
)

const rules = `
# Accounts: same bank account and device fingerprint, abbreviated names.
acc: Account(a) ^ Account(b) ^ a.bank = b.bank ^ a.device = b.device ^
     nameabbrev(a.name, b.name) -> a.id = b.id

# Shops (collective): same contact email, ML-similar shop names, owners
# sharing a registration IP.
shp: Account(a) ^ Account(b) ^ Shop(x) ^ Shop(y) ^ x.owner = a.ano ^ y.owner = b.ano ^
     x.email = y.email ^ jaccard05(x.sname, y.sname) ^ a.regip = b.regip -> x.id = y.id

# Accounts again (deep): both bought the same product from the same shop
# entity within one session IP, with similar names and one address.
dac: Account(a) ^ Account(b) ^ Order(o) ^ Order(u) ^ Shop(x) ^ Shop(y) ^
     a.ano = o.buyer ^ b.ano = u.buyer ^ o.seller = x.sno ^ u.seller = y.sno ^
     x.id = y.id ^ o.item = u.item ^ o.ip = u.ip ^ a.addr = b.addr ^
     nameabbrev(a.name, b.name) -> a.id = b.id
`

type gen struct{ r *rand.Rand }

func (g gen) name() string {
	first := []string{"Alice", "Bruno", "Carla", "Deven", "Elena", "Felix", "Greta", "Hamid", "Irene", "Jonas"}
	last := []string{"Keller", "Larsen", "Moreno", "Novak", "Okafor", "Petrov", "Quinn", "Rossi", "Santos", "Tanaka"}
	return first[g.r.Intn(len(first))] + " " + last[g.r.Intn(len(last))]
}

func main() {
	db := dcer.MustDatabase(
		dcer.MustSchema("Account", "ano",
			dcer.Attr("ano", dcer.TypeString), dcer.Attr("name", dcer.TypeString),
			dcer.Attr("addr", dcer.TypeString), dcer.Attr("bank", dcer.TypeString),
			dcer.Attr("device", dcer.TypeString), dcer.Attr("regip", dcer.TypeString)),
		dcer.MustSchema("Shop", "sno",
			dcer.Attr("sno", dcer.TypeString), dcer.Attr("sname", dcer.TypeString),
			dcer.Attr("owner", dcer.TypeString), dcer.Attr("email", dcer.TypeString)),
		dcer.MustSchema("Order", "ono",
			dcer.Attr("ono", dcer.TypeString), dcer.Attr("buyer", dcer.TypeString),
			dcer.Attr("seller", dcer.TypeString), dcer.Attr("item", dcer.TypeString),
			dcer.Attr("ip", dcer.TypeString)),
	)
	d := dcer.NewDataset(db)
	s := dcer.S
	g := gen{rand.New(rand.NewSource(7))}

	// 300 honest accounts with a shop each and some organic orders.
	const nAcc = 300
	for i := 0; i < nAcc; i++ {
		d.MustAppend("Account",
			s(fmt.Sprintf("A%d", i)), s(fmt.Sprintf("%s %d", g.name(), i)),
			s(fmt.Sprintf("%d Elm St", i)), s(fmt.Sprintf("DE%08d", i)),
			s(fmt.Sprintf("dev-%05d", i)), s(fmt.Sprintf("10.0.%d.%d", i/250, i%250)))
		d.MustAppend("Shop",
			s(fmt.Sprintf("S%d", i)), s(fmt.Sprintf("Shop %s %d", g.name(), i)),
			s(fmt.Sprintf("A%d", i)), s(fmt.Sprintf("shop%d@mail.com", i)))
	}
	ono := 0
	for i := 0; i < 900; i++ {
		buyer := g.r.Intn(nAcc)
		seller := g.r.Intn(nAcc)
		d.MustAppend("Order",
			s(fmt.Sprintf("O%d", ono)), s(fmt.Sprintf("A%d", buyer)),
			s(fmt.Sprintf("S%d", seller)), s(fmt.Sprintf("P%d", g.r.Intn(500))),
			s(fmt.Sprintf("93.8.%d.%d", g.r.Intn(200), g.r.Intn(200))))
		ono++
	}

	// 12 fraud rings. Each ring is ONE person with two accounts: the base
	// account A<i> and a forged alias AF<i> with an abbreviated name. The
	// alias opens a clone shop, and the two shops cross-buy one product.
	var ringBase []int
	for r := 0; r < 12; r++ {
		i := g.r.Intn(nAcc)
		ringBase = append(ringBase, i)
		base := d.Relation("Account").Tuples[i]
		alias := fmt.Sprintf("AF%d", i)
		// Abbreviate "Alice Keller 42" -> "A. Keller 42".
		nm := base.Val(1).Str
		abbrev := nm[:1] + "." + nm[ixSpace(nm):]
		d.MustAppend("Account",
			s(alias), s(abbrev), s(base.Val(2).Str),
			s(base.Val(3).Str), s(base.Val(4).Str), s(base.Val(5).Str))
		cloneShop := fmt.Sprintf("SF%d", i)
		d.MustAppend("Shop",
			s(cloneShop), s("Shop "+abbrev), s(alias), s(fmt.Sprintf("shop%d@mail.com", i)))
		// Cross-buy: alias buys product PX<i> from the base shop; the base
		// account buys the same product from the clone shop, same IP.
		ip := fmt.Sprintf("171.5.%d.9", i%200)
		d.MustAppend("Order", s(fmt.Sprintf("O%d", ono)), s(alias),
			s(fmt.Sprintf("S%d", i)), s(fmt.Sprintf("PX%d", i)), s(ip))
		ono++
		d.MustAppend("Order", s(fmt.Sprintf("O%d", ono)), s(fmt.Sprintf("A%d", i)),
			s(cloneShop), s(fmt.Sprintf("PX%d", i)), s(ip))
		ono++
	}

	rs, err := dcer.ParseRules(rules, db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dcer.MatchParallel(d, rs, dcer.DefaultClassifiers(), dcer.ParallelOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A ring is exposed when an account entity both owns a shop and buys
	// its own product from another of its shops.
	fmt.Printf("dataset: %d tuples; resolved %d multi-record entities\n",
		d.Size(), len(res.Classes()))
	ownerGID := map[string]dcer.TID{}
	for _, sh := range d.Relation("Shop").Tuples {
		for _, a := range d.Relation("Account").Tuples {
			if a.Val(0).Str == sh.Val(2).Str {
				ownerGID[sh.Val(0).Str] = a.GID
			}
		}
	}
	buyerGID := map[string]dcer.TID{}
	for _, a := range d.Relation("Account").Tuples {
		buyerGID[a.Val(0).Str] = a.GID
	}
	exposed := map[string]bool{}
	for _, o := range d.Relation("Order").Tuples {
		buyer, okB := buyerGID[o.Val(1).Str]
		owner, okO := ownerGID[o.Val(2).Str]
		if okB && okO && buyer != owner && res.Same(buyer, owner) {
			exposed[o.Val(2).Str] = true
		}
	}
	fmt.Printf("self-dealing shops exposed: %d\n", len(exposed))
	expectedRings := map[int]bool{}
	for _, i := range ringBase {
		expectedRings[i] = true
	}
	fmt.Printf("planted rings: %d (each contributes its base and clone shop)\n", len(expectedRings))
}

func ixSpace(s string) int {
	for i := range s {
		if s[i] == ' ' {
			return i
		}
	}
	return 0
}
