// TPC-H dedup: the multi-level recursion case of the paper's Exp-1(5).
//
// The TPC-H-shaped generator plants duplicate chains that mirror the
// paper's "Argenztina" example: a misspelled nation, a duplicate customer
// referencing it, duplicate orders placed by that customer, and duplicate
// line items under those orders. Recovering the line items takes FOUR
// rounds of recursion: nation -> customer -> order -> lineitem. The
// program runs DMatch in parallel, reports accuracy per recursion level,
// and prints one full deduction chain. Run with:
//
//	go run ./examples/tpchdedup
package main

import (
	"fmt"
	"log"
	"strings"

	"dcer"
	"dcer/internal/datagen"
)

func main() {
	g := datagen.TPCH(datagen.TPCHOptions{Scale: 0.15, Dup: 0.3, Seed: 42})
	rules, err := g.Rules()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dcer.MatchParallel(g.D, rules, dcer.DefaultClassifiers(),
		dcer.ParallelOptions{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	truth := dcer.NewTruth(g.Truth)
	m := dcer.EvaluateClasses(res.Classes(), truth)
	fmt.Printf("TPC-H dedup: |D|=%d tuples, %d planted duplicate pairs\n", g.D.Size(), len(g.Truth))
	fmt.Printf("DMatch (8 workers): %s\n", m)
	fmt.Printf("supersteps=%d messages=%d partition=%v er=%v\n\n",
		res.Supersteps, res.MessagesRouted, res.PartitionTime, res.ERTime)

	// Per-relation recall: deeper relations need more recursion.
	fmt.Println("Recall by recursion depth:")
	byRel := map[string][2]int{} // relation -> (recovered, total)
	for _, p := range g.Truth {
		t := g.D.Tuple(p[0])
		name := g.D.SchemaOf(t).Name
		c := byRel[name]
		c[1]++
		if res.Same(p[0], p[1]) {
			c[0]++
		}
		byRel[name] = c
	}
	for _, name := range []string{"nation", "supplier", "customer", "part", "orders", "lineitem"} {
		c, ok := byRel[name]
		if !ok {
			continue
		}
		depth := map[string]int{"nation": 1, "supplier": 1, "customer": 2, "part": 2, "orders": 3, "lineitem": 4}[name]
		fmt.Printf("  level %d %-9s %4d/%-4d (%.1f%%)\n", depth, name, c[0], c[1], 100*float64(c[0])/float64(c[1]))
	}

	// Print one full 4-level chain: a recovered duplicate line item and
	// the matches that had to exist first.
	fmt.Println("\nOne recovered deep chain (lineitem -> order -> customer -> nation):")
	for _, p := range g.Truth {
		t := g.D.Tuple(p[0])
		if g.D.SchemaOf(t).Name != "lineitem" || !res.Same(p[0], p[1]) {
			continue
		}
		a, b := g.D.Tuple(p[0]), g.D.Tuple(p[1])
		fmt.Printf("  lineitem %s == %s\n", a.Val(0).Str, b.Val(0).Str)
		ok1, ok2 := a.Val(1).Str, b.Val(1).Str
		fmt.Printf("  <- orders  %s == %s (same totalprice/date, matched customers)\n", ok1, ok2)
		cust1, cust2 := findOrderCust(g.D, ok1), findOrderCust(g.D, ok2)
		fmt.Printf("  <- customer %s == %s (same phone, ML-similar names, matched nations)\n", cust1[0], cust2[0])
		fmt.Printf("  <- nation  %s (%q) == %s (%q) (typo-similar names)\n",
			cust1[1], nationName(g.D, cust1[1]), cust2[1], nationName(g.D, cust2[1]))
		break
	}
}

// findOrderCust returns (custkey, nationkey) of an order's customer.
func findOrderCust(d *dcer.Dataset, orderkey string) [2]string {
	var custkey string
	for _, o := range d.Relation("orders").Tuples {
		if o.Val(0).Str == orderkey {
			custkey = o.Val(1).Str
			break
		}
	}
	for _, c := range d.Relation("customer").Tuples {
		if c.Val(0).Str == custkey {
			return [2]string{custkey, c.Val(3).Str}
		}
	}
	return [2]string{custkey, "?"}
}

func nationName(d *dcer.Dataset, nationkey string) string {
	for _, n := range d.Relation("nation").Tuples {
		if n.Val(0).Str == nationkey {
			return strings.TrimSpace(n.Val(1).Str)
		}
	}
	return "?"
}
