// Quickstart: the paper's running example (Tables I-IV, Example 1).
//
// Four e-commerce relations — Customers, Shops, Products, Orders — hide an
// account-abuse fraud: shops s2 and s4 buy the same product from each
// other. Detecting it needs deep and collective ER: products are matched
// with an ML similarity predicate, shops collectively through their
// owners' phone numbers, and customers recursively using both previous
// match sets. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcer"
)

const rules = `
# φ1: same name, phone and address -> same customer.
phi1: Customers(t) ^ Customers(s) ^ t.name = s.name ^ t.phone = s.phone ^ t.addr = s.addr -> t.id = s.id

# φ2: same product name, ML-similar descriptions -> same product.
phi2: Products(p) ^ Products(q) ^ p.pname = q.pname ^ jaccard05(p.desc, q.desc) -> p.id = q.id

# φ3 (collective): same email, ML-similar shop names, owners share a phone.
phi3: Customers(c) ^ Customers(d) ^ Shops(x) ^ Shops(y) ^ jaccard05(x.sname, y.sname) ^
      x.email = y.email ^ x.owner = c.cno ^ y.owner = d.cno ^ c.phone = d.phone -> x.id = y.id

# φ4 (deep + collective): same address, ML-similar names, and both bought
# the same product (entity!) in the same shop (entity!) from one IP.
phi4: Customers(c) ^ Customers(d) ^ Orders(o) ^ Orders(u) ^ Products(p) ^ Products(q) ^
      Shops(x) ^ Shops(y) ^ c.cno = o.buyer ^ d.cno = u.buyer ^ o.item = p.pno ^
      u.item = q.pno ^ o.seller = x.sno ^ u.seller = y.sno ^ nameabbrev(c.name, d.name) ^
      c.addr = d.addr ^ o.IP = u.IP ^ p.id = q.id ^ x.id = y.id -> c.id = d.id
`

func main() {
	db := dcer.MustDatabase(
		dcer.MustSchema("Customers", "cno",
			dcer.Attr("cno", dcer.TypeString), dcer.Attr("name", dcer.TypeString),
			dcer.Attr("phone", dcer.TypeString), dcer.Attr("addr", dcer.TypeString),
			dcer.Attr("pref", dcer.TypeString)),
		dcer.MustSchema("Shops", "sno",
			dcer.Attr("sno", dcer.TypeString), dcer.Attr("sname", dcer.TypeString),
			dcer.Attr("owner", dcer.TypeString), dcer.Attr("email", dcer.TypeString),
			dcer.Attr("loc", dcer.TypeString)),
		dcer.MustSchema("Products", "pno",
			dcer.Attr("pno", dcer.TypeString), dcer.Attr("pname", dcer.TypeString),
			dcer.Attr("price", dcer.TypeString), dcer.Attr("desc", dcer.TypeString)),
		dcer.MustSchema("Orders", "ono",
			dcer.Attr("ono", dcer.TypeString), dcer.Attr("buyer", dcer.TypeString),
			dcer.Attr("seller", dcer.TypeString), dcer.Attr("item", dcer.TypeString),
			dcer.Attr("IP", dcer.TypeString)),
	)
	d := dcer.NewDataset(db)
	s := dcer.S
	// Tables I-IV of the paper.
	d.MustAppend("Customers", s("c1"), s("Ford Smith"), s("(213) 243-9856"), s("1st Ave, LA"), s("clothing, makeup"))
	d.MustAppend("Customers", s("c2"), s("F. Smith"), s("(213) 333-0001"), s("1st Ave, LA"), s("clothing"))
	d.MustAppend("Customers", s("c3"), s("F. Smith"), s("(213) 333-0001"), s("1st Ave, LA"), s("dress"))
	d.MustAppend("Customers", s("c4"), s("Tony Brown"), s("(347) 981-3452"), s("9 Ave, NY"), s("sports"))
	d.MustAppend("Customers", s("c5"), s("T. Brown"), s("(347) 981-3452"), s("-"), s("sports"))
	d.MustAppend("Shops", s("s1"), s("Comp. World"), s("c1"), s("FSm@g.com"), s("1st Ave, LA"))
	d.MustAppend("Shops", s("s2"), s("Smith's Tech shop"), s("c2"), s("F_Sm@g.com"), s("1st Ave, LA"))
	d.MustAppend("Shops", s("s3"), s("Lap. store"), s("c3"), s("jp@youp.com"), s("1st Ave, LA"))
	d.MustAppend("Shops", s("s4"), s("T's Store"), s("c4"), s("T.Brown@ga.com"), s("9 Ave, NY"))
	d.MustAppend("Shops", s("s5"), s("Tony's Store"), s("c5"), s("T.Brown@ga.com"), s("-"))
	d.MustAppend("Products", s("p1"), s("Apple MacBook"), s("$1000"), s("Apple MacBook Air (13-inch, 8GB RAM, 256GB SSD)"))
	d.MustAppend("Products", s("p2"), s("ThinkPad"), s("$2000"), s("ThinkPad X1 Carbon 7th Gen : 14-Inch, 16GB RAM, 512GB Nvme SSD"))
	d.MustAppend("Products", s("p3"), s("ThinkPad"), s("$1800"), s("ThinkPad X1 Carbon 7th Gen 14\" - 16 GB RAM - 512 GB SSD"))
	d.MustAppend("Products", s("p4"), s("Acer Laptop"), s("$500"), s("Acer Aspire 5 Slim Laptop, 15.6 inches, 4GB DDR4, 128GB SSD, Backlit Keyboard"))
	d.MustAppend("Orders", s("o1"), s("c4"), s("s2"), s("p2"), s("156.33.14.7"))
	d.MustAppend("Orders", s("o2"), s("c3"), s("s4"), s("p2"), s("113.55.126.9"))
	d.MustAppend("Orders", s("o3"), s("c1"), s("s5"), s("p3"), s("113.55.126.9"))
	d.MustAppend("Orders", s("o4"), s("c1"), s("s4"), s("p2"), s("143.32.11.2"))

	rs, err := dcer.ParseRules(rules, db)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dcer.Match(d, rs, dcer.DefaultClassifiers())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Resolved entities:")
	for _, class := range eng.Classes() {
		fmt.Print("  ")
		for k, gid := range class {
			t := d.Tuple(gid)
			sc := d.SchemaOf(t)
			if k > 0 {
				fmt.Print(" == ")
			}
			fmt.Printf("%s(%s)", sc.Name, t.ID(sc))
		}
		fmt.Println()
	}

	// The fraud check of Example 1: does some customer own a shop that
	// buys its own product from another of the customer's shops?
	fmt.Println("\nFraud check (account abuse):")
	customers := d.Relation("Customers")
	orders := d.Relation("Orders")
	shops := d.Relation("Shops")
	ownerOf := func(shopNo string) *dcer.Tuple {
		for _, sh := range shops.Tuples {
			if sh.Val(0).Str == shopNo {
				for _, c := range customers.Tuples {
					if c.Val(0).Str == sh.Val(2).Str {
						return c
					}
				}
			}
		}
		return nil
	}
	reported := map[string]bool{}
	for _, o1 := range orders.Tuples {
		for _, o2 := range orders.Tuples {
			if o1 == o2 || o1.Val(3).Str != o2.Val(3).Str {
				continue // different products
			}
			// o1: buyer B1 buys from seller S1; o2: buyer B2 from S2.
			// Fraud when B1 owns S2 and B2 owns S1 (as entities).
			var b1, b2 *dcer.Tuple
			for _, c := range customers.Tuples {
				if c.Val(0).Str == o1.Val(1).Str {
					b1 = c
				}
				if c.Val(0).Str == o2.Val(1).Str {
					b2 = c
				}
			}
			s1o, s2o := ownerOf(o1.Val(2).Str), ownerOf(o2.Val(2).Str)
			if b1 == nil || b2 == nil || s1o == nil || s2o == nil {
				continue
			}
			if eng.Same(b1.GID, s2o.GID) && eng.Same(b2.GID, s1o.GID) {
				sa, sb := o1.Val(2).Str, o2.Val(2).Str
				if sb < sa {
					sa, sb = sb, sa
				}
				key := sa + "|" + sb + "|" + o1.Val(3).Str
				if reported[key] {
					continue
				}
				reported[key] = true
				fmt.Printf("  shops %s and %s buy product %s from each other (owners %s / %s)\n",
					sa, sb, o1.Val(3).Str, s1o.Val(0).Str, s2o.Val(0).Str)
			}
		}
	}
}
