// Softmatching: the soft-rule extension (the paper's future work) plus
// match explanations, on a product-catalog reconciliation scenario.
//
// Two sellers list overlapping catalogs. Three rules with different
// reliabilities match the listings: exact barcode agreement (0.98),
// same brand and ML-similar titles (0.85), and a weak price+brand signal
// (0.6). The soft chase returns per-pair probabilities under max-product
// semantics; thresholding trades precision for recall, and Explain shows
// the derivation of any crisp match. Run with:
//
//	go run ./examples/softmatching
package main

import (
	"fmt"
	"log"

	"dcer"
)

const rulesText = `
# Strong: shared barcode.
barcode: Listing(a) ^ Listing(b) ^ a.barcode = b.barcode -> a.id = b.id

# Medium: same brand, ML-similar titles.
title:   Listing(a) ^ Listing(b) ^ a.brand = b.brand ^ jaro085(a.title, b.title) -> a.id = b.id

# Weak: same brand and price only.
price:   Listing(a) ^ Listing(b) ^ a.brand = b.brand ^ a.price = b.price -> a.id = b.id
`

func main() {
	db := dcer.MustDatabase(dcer.MustSchema("Listing", "lid",
		dcer.Attr("lid", dcer.TypeString),
		dcer.Attr("title", dcer.TypeString),
		dcer.Attr("brand", dcer.TypeString),
		dcer.Attr("barcode", dcer.TypeString),
		dcer.Attr("price", dcer.TypeFloat)))
	d := dcer.NewDataset(db)
	s, f := dcer.S, dcer.F

	// Seller A.
	a1 := d.MustAppend("Listing", s("a1"), s("Aurora Espresso Machine 15 bar"), s("Aurora"), s("801234"), f(249))
	a2 := d.MustAppend("Listing", s("a2"), s("Nimbus Cordless Vacuum V8"), s("Nimbus"), s("802345"), f(199))
	a3 := d.MustAppend("Listing", s("a3"), s("Helix Air Fryer 5L"), s("Helix"), s("803456"), f(89))
	// Seller B. b2 lost its barcode in B's feed (different placeholder);
	// b3 is the same fryer relisted under a different barcode and title.
	b1 := d.MustAppend("Listing", s("b1"), s("Aurora Espresso Machine 15-bar"), s("Aurora"), s("801234"), f(239))
	b2 := d.MustAppend("Listing", s("b2"), s("Nimbus Cordless Vacuum V-8"), s("Nimbus"), s("809990"), f(189))
	b3 := d.MustAppend("Listing", s("b3"), s("Family Size Fryer by Helix"), s("Helix"), s("809991"), f(89))

	rules, err := dcer.ParseRules(rulesText, db)
	if err != nil {
		log.Fatal(err)
	}
	soft := []dcer.SoftRule{
		{Rule: rules[0], Confidence: 0.98},
		{Rule: rules[1], Confidence: 0.85},
		{Rule: rules[2], Confidence: 0.60},
	}
	res, err := dcer.MatchSoft(d, soft, dcer.DefaultClassifiers(), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Soft match scores:")
	for _, m := range res.Matches(0.1) {
		ta, tb := d.Tuple(m.A), d.Tuple(m.B)
		fmt.Printf("  P=%.3f  %s  ~  %s\n", m.P, ta.Val(0).Str, tb.Val(0).Str)
	}

	fmt.Println("\nHardened at τ=0.8:")
	for _, class := range res.Harden(0.8) {
		for k, gid := range class {
			if k > 0 {
				fmt.Print(" == ")
			} else {
				fmt.Print("  ")
			}
			fmt.Print(d.Tuple(gid).Val(0).Str)
		}
		fmt.Println()
	}
	fmt.Println("\nHardened at τ=0.5 (weak price rule now counts):")
	for _, class := range res.Harden(0.5) {
		for k, gid := range class {
			if k > 0 {
				fmt.Print(" == ")
			} else {
				fmt.Print("  ")
			}
			fmt.Print(d.Tuple(gid).Val(0).Str)
		}
		fmt.Println()
	}

	// Crisp explanation of one match.
	fmt.Println("\nWhy do a2 and b2 match (crisp chase)?")
	ex, err := dcer.Explain(d, rules, dcer.DefaultClassifiers(), a2.GID, b2.GID)
	if err != nil {
		log.Fatal(err)
	}
	if ex != nil {
		fmt.Print(ex.Render(d))
	}
	_, _, _, _ = a1, b1, b3, a3
}
