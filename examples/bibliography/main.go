// Bibliography: collective citation deduplication, modeled on rule φ_c of
// the paper's case study (Exp-4). Papers live in an Article table, authors
// in an Author table, connected by an Article_Author join table. Two
// articles are duplicates when they share title, booktitle, year and
// issue, have ML-similar abstracts, AND have a common (resolved) author —
// which requires resolving authors first: a collective, deep deduction.
// Run with:
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"

	"dcer"
)

const rules = `
# Authors: same affiliation, abbreviation-similar names.
au: Author(a) ^ Author(b) ^ a.affil = b.affil ^ nameabbrev(a.aname, b.aname) -> a.id = b.id

# Articles (φ_c of the paper): same title/booktitle/year/issue, ML-similar
# abstracts, and a common author entity.
art: Article_Author(x) ^ Article_Author(y) ^ Article(p) ^ Article(q) ^ Author(a) ^ Author(b) ^
     x.article_id = p.article_id ^ y.article_id = q.article_id ^
     x.author_id = a.author_id ^ y.author_id = b.author_id ^ a.id = b.id ^
     p.title = q.title ^ p.booktitle = q.booktitle ^ p.year = q.year ^ p.issue = q.issue ^
     jaccard05(p.abstract, q.abstract) -> p.id = q.id
`

func main() {
	db := dcer.MustDatabase(
		dcer.MustSchema("Article", "article_id",
			dcer.Attr("article_id", dcer.TypeString), dcer.Attr("title", dcer.TypeString),
			dcer.Attr("booktitle", dcer.TypeString), dcer.Attr("year", dcer.TypeInt),
			dcer.Attr("issue", dcer.TypeInt), dcer.Attr("abstract", dcer.TypeString)),
		dcer.MustSchema("Author", "author_id",
			dcer.Attr("author_id", dcer.TypeString), dcer.Attr("aname", dcer.TypeString),
			dcer.Attr("affil", dcer.TypeString)),
		dcer.MustSchema("Article_Author", "aa_id",
			dcer.Attr("aa_id", dcer.TypeString), dcer.Attr("article_id", dcer.TypeString),
			dcer.Attr("author_id", dcer.TypeString)),
	)
	d := dcer.NewDataset(db)
	s, i := dcer.S, dcer.I

	// Authors: a1/a2 are the same person (full vs abbreviated name).
	d.MustAppend("Author", s("a1"), s("Wenfei Fan"), s("Edinburgh"))
	d.MustAppend("Author", s("a2"), s("W. Fan"), s("Edinburgh"))
	d.MustAppend("Author", s("a3"), s("Ting Deng"), s("Beihang"))
	d.MustAppend("Author", s("a4"), s("Ping Lu"), s("Beihang"))
	d.MustAppend("Author", s("a5"), s("Wei Fan"), s("Stanford")) // different person

	// Articles: p1/p2 are the same paper indexed twice (ACM vs DBLP);
	// p3 agrees on every textual attribute but has no shared author.
	d.MustAppend("Article", s("p1"), s("Deep and Collective Entity Resolution"),
		s("ICDE"), i(2022), i(1),
		s("We study deep and collective entity resolution with matching rules and ML predicates"))
	d.MustAppend("Article", s("p2"), s("Deep and Collective Entity Resolution"),
		s("ICDE"), i(2022), i(1),
		s("We study deep and collective entity resolution using matching rules and embedded ML predicates"))
	d.MustAppend("Article", s("p3"), s("Deep and Collective Entity Resolution"),
		s("ICDE"), i(2022), i(1),
		s("We study deep and collective entity resolution with matching rules"))
	d.MustAppend("Article", s("p4"), s("Parallel Graph Computations"),
		s("TODS"), i(2018), i(4),
		s("We parallelize sequential graph computations"))

	d.MustAppend("Article_Author", s("x1"), s("p1"), s("a1"))
	d.MustAppend("Article_Author", s("x2"), s("p1"), s("a3"))
	d.MustAppend("Article_Author", s("x3"), s("p2"), s("a2"))
	d.MustAppend("Article_Author", s("x4"), s("p2"), s("a4"))
	d.MustAppend("Article_Author", s("x5"), s("p3"), s("a5"))
	d.MustAppend("Article_Author", s("x6"), s("p4"), s("a1"))

	rs, err := dcer.ParseRules(rules, db)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dcer.Match(d, rs, dcer.DefaultClassifiers())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Resolved entities:")
	for _, class := range eng.Classes() {
		fmt.Print("  ")
		for k, gid := range class {
			t := d.Tuple(gid)
			sc := d.SchemaOf(t)
			if k > 0 {
				fmt.Print(" == ")
			}
			fmt.Printf("%s(%s)", sc.Name, t.ID(sc))
		}
		fmt.Println()
	}
	fmt.Println("\nNote: Article(p3) agrees with p1/p2 on title, booktitle, year,")
	fmt.Println("issue and abstract, yet is NOT merged: it has no common author —")
	fmt.Println("a distinction only collective ER across the join table can make.")
}
