// Command explain answers "why did these tuples match?": it runs the
// resolver with justification capture on and renders proofs extracted
// from the production log — including derivation chains that cross
// workers in a parallel run.
//
// Usage:
//
//	explain -data ./out -rules ./out/rules.mrl [-workers 4]
//	        [-pair "Rel:idvalue,Rel:idvalue"]...
//	        [-sample 5] [-truth ./out/truth.csv] [-seed 1]
//	        [-limit 1048576] [-telemetry :9090] [-log debug]
//
// With -pair (repeatable) the proof of each named pair is printed. With
// -truth the run enters audit mode: the resolved classes are scored
// against the ground truth (the truth.csv that cmd/datagen emits) and a
// proof is attached to a sample of the predicted pairs, false positives
// first — the pairs most worth reading. Without -truth, -sample prints
// proofs for a reproducible sample of the matched pairs.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"dcer"
	"dcer/internal/cliutil"
	"dcer/internal/eval"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("explain: ")
	dataDir := flag.String("data", "", "directory of <relation>.csv files")
	rulesFile := flag.String("rules", "", "MRL rule file")
	workers := flag.Int("workers", 1, "number of BSP workers (1 = sequential Match)")
	var pairs multiFlag
	flag.Var(&pairs, "pair", `prove one pair: "Rel:idvalue,Rel:idvalue" (repeatable)`)
	sample := flag.Int("sample", 5, "number of matched pairs to sample when no -pair is given (0 = all)")
	truthFile := flag.String("truth", "", "ground-truth pair CSV (audit mode: metrics + sampled proofs)")
	seed := flag.Int64("seed", 1, "sampling seed")
	limit := flag.Int("limit", 0, "justification log bound in entries (0 = default, negative = unbounded)")
	obs := cliutil.Register()
	flag.Parse()
	if *dataDir == "" || *rulesFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	logg, stopTel, err := obs.Init("explain")
	if err != nil {
		log.Fatal(err)
	}
	defer stopTel()

	d, err := dcer.LoadDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	text, err := os.ReadFile(*rulesFile)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := dcer.ParseRules(string(text), d.DB)
	if err != nil {
		log.Fatal(err)
	}
	reg := dcer.DefaultClassifiers()

	// Run once with capture on; every proof below comes from this log.
	var classes [][]dcer.TID
	var plog *dcer.ProvenanceLog
	if *workers <= 1 {
		plog = dcer.NewProvenanceLog(*limit)
		eng, err := dcer.NewEngine(d, rules, reg, dcer.EngineOptions{
			ShareIndexes: true,
			Metrics:      obs.Registry(),
			Provenance:   plog,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng.Run()
		classes = eng.Classes()
	} else {
		res, err := dcer.MatchParallel(d, rules, reg, dcer.ParallelOptions{
			Workers:         *workers,
			Metrics:         obs.Registry(),
			Provenance:      true,
			ProvenanceLimit: *limit,
		})
		if err != nil {
			log.Fatal(err)
		}
		classes = res.Classes()
		plog = res.Provenance()
	}
	if !plog.Complete() {
		logg.Warnf("justification log overflowed: %d derivations dropped — some proofs may be unavailable", plog.Dropped())
	}
	prove := func(a, b dcer.TID) (string, error) {
		ex, err := dcer.ExplainFromLog(plog, d, a, b)
		if err != nil {
			return "", err
		}
		return ex.Render(d), nil
	}
	name := func(gid dcer.TID) string {
		t := d.Tuple(gid)
		if t == nil {
			return fmt.Sprintf("#%d", gid)
		}
		s := d.SchemaOf(t)
		return fmt.Sprintf("%s(%s)", s.Name, t.ID(s))
	}

	if len(pairs) > 0 {
		for _, spec := range pairs {
			a, b, err := parseTarget(d, spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("== %s = %s\n", name(a), name(b))
			proof, err := prove(a, b)
			switch {
			case errors.Is(err, dcer.ErrNoMatch):
				fmt.Println("   no match: the pair is not entailed by the rules")
			case err != nil:
				log.Fatal(err)
			default:
				fmt.Print(proof)
			}
		}
		return
	}

	audit := *truthFile != ""
	var truth *eval.Truth
	if audit {
		t, err := loadTruth(*truthFile)
		if err != nil {
			log.Fatal(err)
		}
		truth = t
	} else {
		truth = eval.NewTruth(nil)
	}
	rep := eval.Audit(classes, truth, *sample, *seed, prove)
	if audit {
		fmt.Printf("precision=%.4f recall=%.4f f1=%.4f  (%d pairs sampled)\n\n",
			rep.Metrics.Precision, rep.Metrics.Recall, rep.Metrics.F1, len(rep.Sampled))
	}
	for _, e := range rep.Sampled {
		fmt.Printf("== %s = %s", name(e.Pair[0]), name(e.Pair[1]))
		if audit {
			if e.TruePositive {
				fmt.Print("  [true positive]")
			} else {
				fmt.Print("  [FALSE POSITIVE]")
			}
		}
		fmt.Println()
		if e.ProofErr != nil {
			fmt.Printf("   proof unavailable: %v\n", e.ProofErr)
			continue
		}
		fmt.Print(e.Proof)
	}
}

// parseTarget resolves "Rel:idvalue,Rel:idvalue" to two global tuple ids.
func parseTarget(d *dcer.Dataset, spec string) (dcer.TID, dcer.TID, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`-pair wants "Rel:idvalue,Rel:idvalue", got %q`, spec)
	}
	var out [2]dcer.TID
	for i, part := range parts {
		relName, idVal, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return 0, 0, fmt.Errorf("bad tuple reference %q", part)
		}
		rel := d.Relation(relName)
		if rel == nil {
			return 0, 0, fmt.Errorf("no relation %q", relName)
		}
		found := false
		for _, t := range rel.Tuples {
			if t.ID(rel.Schema).String() == idVal {
				out[i] = t.GID
				found = true
				break
			}
		}
		if !found {
			return 0, 0, fmt.Errorf("no tuple %s in %s", idVal, relName)
		}
	}
	return out[0], out[1], nil
}

// loadTruth reads the ground-truth pair CSV that cmd/datagen writes: a
// header row, then one "orig,dup" global-tuple-id pair per line.
func loadTruth(path string) (*eval.Truth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	var pairs [][2]dcer.TID
	for i, row := range rows {
		if len(row) < 2 {
			continue
		}
		a, errA := strconv.Atoi(strings.TrimSpace(row[0]))
		b, errB := strconv.Atoi(strings.TrimSpace(row[1]))
		if errA != nil || errB != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("%s:%d: bad pair %v", path, i+1, row)
		}
		pairs = append(pairs, [2]dcer.TID{dcer.TID(a), dcer.TID(b)})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return eval.NewTruth(pairs), nil
}
