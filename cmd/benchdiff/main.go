// Command benchdiff reads two or more BENCH_*.json reports (oldest
// first) and prints the per-arm trajectory tables: ns/op, B/op,
// allocs/op, and peak RSS where the reports carry storage arms. It warns
// when the reports' environment headers differ (gomaxprocs, numcpu,
// goos/goarch, scale — timings across those are noise, not signal).
//
// Usage:
//
//	benchdiff BENCH_6.json BENCH_7.json [BENCH_8.json …]
//	benchdiff -gate '^(Deduce|IncDeduce)/' -threshold 10 BENCH_7.json BENCH_8.json
//
// With -gate, the first and last report are compared arm by arm over the
// arms matching the regex, and the command exits nonzero when any of
// them regressed (ns/op grew) by more than -threshold percent — the
// regression gate scripts/ci.sh runs over the repo's BENCH trajectory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"dcer/internal/benchdiff"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	gate := flag.String("gate", "", "regex naming the gated tier of arms; compare first vs last report and fail on regression")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -gate")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate RE -threshold PCT] OLD.json [MID.json …] NEW.json")
		os.Exit(2)
	}

	reports := make([]*benchdiff.Report, 0, flag.NArg())
	for _, path := range flag.Args() {
		r, err := benchdiff.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, r)
	}

	for _, w := range benchdiff.HeaderWarnings(reports) {
		fmt.Fprintln(os.Stderr, "warning: "+w)
	}
	benchdiff.WriteTables(os.Stdout, reports)

	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			log.Fatalf("bad -gate regex: %v", err)
		}
		regs := benchdiff.Gate(reports, re, *threshold)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d arm(s) regressed beyond %.1f%% (%s -> %s):\n",
				len(regs), *threshold, reports[0].Label(), reports[len(reports)-1].Label())
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r.String())
			}
			os.Exit(1)
		}
		fmt.Printf("gate OK: no %q arm regressed beyond %.1f%% (%s -> %s)\n",
			*gate, *threshold, reports[0].Label(), reports[len(reports)-1].Label())
	}
}
