// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section VI) on the synthetic stand-in datasets.
//
// Usage:
//
//	experiments [-exp all|tableV|tableVI|fig6ab|fig6cd|fig6ef|fig6gh|fig6ij|fig6kl|partitioning|casestudy|denorm|audit]
//	            [-scale 0.2] [-workers 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"dcer/internal/cliutil"
	"dcer/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scale := flag.Float64("scale", 0.2, "dataset scale factor (1.0 ≈ 25k TPC-H tuples)")
	workers := flag.Int("workers", 8, "default number of workers n")
	seed := flag.Int64("seed", 1, "generator seed")
	obs := cliutil.Register()
	flag.Parse()
	logg, stopTel, err := obs.Init("experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	defer stopTel()

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Seed: *seed}
	drivers := map[string]func(experiments.Config) *experiments.Table{
		"tableV":       experiments.TableV,
		"tableVI":      experiments.TableVI,
		"fig6ab":       experiments.Fig6AB,
		"fig6cd":       experiments.Fig6CD,
		"fig6ef":       experiments.Fig6EF,
		"fig6gh":       experiments.Fig6GH,
		"fig6ij":       experiments.Fig6IJ,
		"fig6kl":       experiments.Fig6KL,
		"partitioning": experiments.Partitioning,
		"casestudy":    experiments.CaseStudy,
		"denorm":       experiments.Denorm,
		"audit":        experiments.AuditRun,
	}
	order := []string{"tableV", "tableVI", "fig6ab", "fig6cd", "fig6ef", "fig6gh", "fig6ij", "fig6kl", "partitioning", "casestudy", "denorm", "audit"}

	if *exp == "all" {
		for _, name := range order {
			logg.Debugf("running %s...", name)
			drivers[name](cfg).Fprint(os.Stdout)
		}
		return
	}
	driver, ok := drivers[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; one of all %v\n", *exp, order)
		os.Exit(2)
	}
	driver(cfg).Fprint(os.Stdout)
}
