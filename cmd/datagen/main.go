// Command datagen generates the synthetic datasets of the experimental
// study as CSV directories, together with the MRL rule file and the
// ground-truth duplicate pairs.
//
// Usage:
//
//	datagen -kind tpch|tfacc|imdb|dblp|movie|songs|paper -out ./out
//	        [-scale 0.2] [-dup 0.3] [-seed 1]
//
// Output layout: out/<relation>.csv per relation, out/rules.mrl, and
// out/truth.csv listing the planted duplicate pairs as global tuple ids.
// The layout is what cmd/dmatch consumes directly, and truth.csv is the
// ground-truth file cmd/explain's -truth audit mode reads.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dcer"
	"dcer/internal/cliutil"
	"dcer/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	kind := flag.String("kind", "tpch", "dataset kind: tpch|tfacc|imdb|dblp|movie|songs|paper")
	out := flag.String("out", "", "output directory")
	scale := flag.Float64("scale", 0.2, "scale factor")
	dup := flag.Float64("dup", 0.3, "duplication rate")
	seed := flag.Int64("seed", 1, "generator seed")
	obs := cliutil.Register()
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	logg, stopTel, err := obs.Init("datagen")
	if err != nil {
		log.Fatal(err)
	}
	defer stopTel()
	logg.Debugf("generating %s (scale %.2f, dup %.2f, seed %d)", *kind, *scale, *dup, *seed)

	var g *datagen.Generated
	switch *kind {
	case "tpch":
		g = datagen.TPCH(datagen.TPCHOptions{Scale: *scale, Dup: *dup, Seed: *seed})
	case "tfacc":
		g = datagen.TFACC(datagen.TFACCOptions{Scale: *scale, Dup: *dup, Seed: *seed})
	case "imdb":
		g = &datagen.IMDBLike(int(4000**scale), *dup, *seed).Generated
	case "dblp":
		g = &datagen.DBLPLike(int(3000**scale), *dup, *seed).Generated
	case "movie":
		g = &datagen.MovieLike(int(3000**scale), *dup, *seed).Generated
	case "songs":
		g = &datagen.SongsLike(int(4000**scale), *dup, *seed).Generated
	case "paper":
		d, _ := datagen.PaperExample()
		g = &datagen.Generated{D: d, RulesText: datagen.PaperRulesText}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if err := dcer.SaveDir(g.D, *out); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "rules.mrl"), []byte(g.RulesText), 0o644); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(*out, "truth.csv"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(f, "orig,dup")
	for _, p := range g.Truth {
		fmt.Fprintf(f, "%d,%d\n", p[0], p[1])
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	logg.Infof("wrote %s: %d tuples, %d relations, %d truth pairs",
		*out, g.D.Size(), len(g.D.Relations), len(g.Truth))
}
