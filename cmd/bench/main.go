// Command bench is the repo's performance harness: it benchmarks the
// chase hot path (first-pass Deduce, sequential vs concurrent), the
// incremental IncDeduce drain, the ML caches, the full parallel DMatch
// run, and the Fig. 6 experiment drivers on the synthetic generators,
// then writes the results to a JSON file (BENCH_<n>.json by convention,
// one per perf PR) so the performance trajectory of the engine is
// tracked in-repo.
//
//	go run ./cmd/bench                   # full run, writes BENCH_3.json
//	go run ./cmd/bench -fig6=false       # hot-path benchmarks only
//	go run ./cmd/bench -scale 1.0 -out /tmp/bench.json
//	go run ./cmd/bench -cpuprofile cpu.out -memprofile mem.out
//	go run ./cmd/bench -repeat 5         # more noise suppression
//	go run ./cmd/bench -telemetry :9090  # live /metrics + pprof while it runs
//
// Besides the timings the report embeds the per-stage latency histograms
// of a telemetry-enabled pass (rule enumeration/merge, drain batches, BSP
// routing and worker busy time) and the measured overhead of running
// Deduce with instrumentation attached; after writing the JSON it prints
// a stage-attribution table and a delta table against the previous
// BENCH_<n>.json (-prev).
//
// The host class these artifacts are measured on (a shared single-core
// VM) shows ±20% run-to-run variance under external load, so the
// harness measures every benchmark -repeat times (default 3) and
// records the per-benchmark minimum — the least noise-contaminated
// sample, the same rationale as benchstat's use of repeated runs.
//
// The Deduce and IncDeduce benchmarks assert that the sequential and
// parallel paths reach byte-identical equivalence classes before
// reporting numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"
	"time"

	"dcer"
	"dcer/internal/chase"
	"dcer/internal/cliutil"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/experiments"
	"dcer/internal/mlpred"
	"dcer/internal/relation"
	"dcer/internal/telemetry"
)

// logg is the progress logger, configured in main (DCER_LOG / -log).
var logg *telemetry.Logger

// entry is one benchmark measurement.
type entry struct {
	Name            string `json:"name"`
	Ops             int    `json:"ops"`
	NsPerOp         int64  `json:"ns_per_op"`
	BytesPerOp      int64  `json:"bytes_per_op"`
	AllocsPerOp     int64  `json:"allocs_per_op"`
	SimulatedTimeNs int64  `json:"simulated_time_ns,omitempty"`
}

// stageHist is one per-stage latency histogram snapshot from the
// telemetry-enabled pass, embedded in the report so stage attribution
// travels with the timings.
type stageHist struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    uint64  `json:"p50"`
	P99    uint64  `json:"p99"`
	Max    uint64  `json:"max"`
}

// report is the BENCH_<n>.json document.
type report struct {
	GOOS             string  `json:"goos"`
	GOARCH           string  `json:"goarch"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Scale            float64 `json:"scale"`
	Repeat           int     `json:"repeat"`
	Tuples           int     `json:"tuples"`
	Rules            int     `json:"rules"`
	ClassesIdentical bool    `json:"classes_identical"`
	Benchmarks       []entry `json:"benchmarks"`
	// IncDeduceStats snapshots the engine counters of the best parallel
	// IncDeduce run: ML pair-cache hits/misses/size and feature-store
	// hits/misses/entries, so the cache effectiveness is tracked in-repo
	// next to the timings.
	IncDeduceStats *chase.Stats `json:"incdeduce_stats,omitempty"`
	// TelemetryOverheadPct is ns/op of Deduce/telemetry relative to
	// Deduce/telemetry_base, its paired uninstrumented arm: the cost of
	// running the same chase with the metrics registry, per-rule
	// histograms, and tracer attached. The arms interleave chase by
	// chase within a pass (each run after a forced GC) and the pct
	// compares same-pass sums from the least-loaded pass, so it is not
	// swamped by the host's run-to-run variance.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// StageHistograms are the per-stage latency histograms of the
	// telemetry-enabled pass (chase rule enumeration/merge, drain
	// batches, DMatch routing and worker busy time, HyPart shape).
	StageHistograms []stageHist `json:"stage_histograms,omitempty"`
	// SeedBaseline carries the measurements taken at the growth seed
	// (before PR 1), on the same host class, for trajectory comparison;
	// PR1Baseline carries the BENCH_1.json numbers forward the same way.
	SeedBaseline []entry `json:"seed_baseline"`
	PR1Baseline  []entry `json:"pr1_baseline"`
	Notes        string  `json:"notes"`
}

// seedBaseline was measured at the seed commit (pre PR 1) on the same
// dataset (TPCH scale 2.0, Dup 0.3, seed 1 → 57336 tuples, 6 rules) and
// host class (single-core 2.1 GHz Xeon). Deduce had no concurrent mode
// then, so the sequential number doubles as the seed hot-path number.
var seedBaseline = []entry{
	{Name: "Deduce/sequential@seed", Ops: 3, NsPerOp: 2226823835, BytesPerOp: 119643338, AllocsPerOp: 4343969},
	{Name: "DMatch/workers=8@seed", Ops: 3, NsPerOp: 6390755182, BytesPerOp: 525228584, AllocsPerOp: 14412321},
}

// pr1Baseline carries the BENCH_1.json measurements (PR 1: parallel
// Deduce + benchmark harness) forward, same dataset and host class.
// BENCH_1.json was a single-shot run, so each number carries the full
// run-to-run variance of the host.
var pr1Baseline = []entry{
	{Name: "Deduce/sequential@pr1", Ops: 1, NsPerOp: 1015453634, BytesPerOp: 68800568, AllocsPerOp: 642886},
	{Name: "Deduce/concurrent@pr1", Ops: 2, NsPerOp: 910244517, BytesPerOp: 106206800, AllocsPerOp: 592040},
	{Name: "DMatch/workers=1@pr1", Ops: 2, NsPerOp: 935345041, BytesPerOp: 127518144, AllocsPerOp: 765996, SimulatedTimeNs: 934009951},
	{Name: "DMatch/workers=8@pr1", Ops: 1, NsPerOp: 3097758138, BytesPerOp: 492571408, AllocsPerOp: 8590142, SimulatedTimeNs: 1239973263},
	{Name: "Fig6ab@pr1", Ops: 1, NsPerOp: 1668058948, BytesPerOp: 303708960, AllocsPerOp: 7323815},
	{Name: "Fig6cd@pr1", Ops: 1, NsPerOp: 7763902213, BytesPerOp: 1655836248, AllocsPerOp: 31746956},
	{Name: "Fig6ef@pr1", Ops: 1, NsPerOp: 1858777470, BytesPerOp: 524741304, AllocsPerOp: 11647929},
	{Name: "Fig6gh@pr1", Ops: 1, NsPerOp: 21496055151, BytesPerOp: 4197169360, AllocsPerOp: 102110321},
	{Name: "Fig6ij@pr1", Ops: 1, NsPerOp: 34271023613, BytesPerOp: 6302184392, AllocsPerOp: 146772635},
	{Name: "Fig6kl@pr1", Ops: 1, NsPerOp: 58820695233, BytesPerOp: 9841052352, AllocsPerOp: 143923008},
}

func toEntry(name string, r testing.BenchmarkResult) entry {
	return entry{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// pass is one full measurement of every benchmark; the merge over
// repeated passes keeps, per benchmark name, the entry with the minimum
// ns/op.
type pass struct {
	entries        []entry
	incDeduceStats *chase.Stats
	stageHists     []stageHist
	// pairBaseNs/pairTelNs are this pass's interleaved overhead arms
	// (mean ns per chase); the overhead pct must come from one pass so
	// both arms saw the same external load.
	pairBaseNs, pairTelNs int64
}

// stageSnapshot flattens a registry's populated histograms into the
// report's embedded form.
func stageSnapshot(reg *telemetry.Registry) []stageHist {
	var out []stageHist
	for _, s := range reg.Snapshot() {
		if s.Histogram == nil || s.Histogram.Count == 0 {
			continue
		}
		var lbls []string
		for _, l := range s.Labels {
			lbls = append(lbls, l.Key+"="+l.Value)
		}
		out = append(out, stageHist{
			Name:   s.Name,
			Labels: strings.Join(lbls, ","),
			Count:  s.Histogram.Count,
			Sum:    s.Histogram.Sum,
			P50:    s.Histogram.Quantile(0.5),
			P99:    s.Histogram.Quantile(0.99),
			Max:    s.Histogram.Max,
		})
	}
	return out
}

func runPass(g *datagen.Generated, rules []*dcer.Rule, workers int, fig6 bool, expScale float64) *pass {
	reg := mlpred.DefaultRegistry()
	p := &pass{}

	classes := map[bool]string{}
	for _, seq := range []bool{true, false} {
		name := "Deduce/concurrent"
		if seq {
			name = "Deduce/sequential"
		}
		logg.Infof("benchmarking %s...", name)
		var last *chase.Engine
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, SequentialDeduce: seq})
				if err != nil {
					b.Fatal(err)
				}
				eng.Deduce()
				last = eng
			}
		})
		classes[seq] = dcer.CanonicalClasses(last.Classes())
		p.entries = append(p.entries, toEntry(name, r))
	}
	if classes[true] != classes[false] {
		fatal(fmt.Errorf("sequential and concurrent Deduce disagree on equivalence classes"))
	}

	// The same concurrent Deduce with the registry live: per-rule
	// histograms, drain instruments, gauge views, tracer. A single ~1s
	// sample on this host class is dominated by GC-cycle boundary luck
	// and neighbor steal (±10-30%), far above the instrumentation cost,
	// so the overhead is measured with tightly interleaved pairs — one
	// uninstrumented chase, one instrumented chase, each after a forced
	// GC, deducePairs times — and compared as same-pass sums: adjacent
	// runs see the same external load, so drift cancels, and the ±1 GC
	// boundary jitter amortizes across the pairs. The report keeps the
	// pct from the least-loaded pass (lowest combined pair time) rather
	// than mixing per-arm minima from different load regimes.
	logg.Infof("benchmarking Deduce/telemetry (paired overhead samples)...")
	treg := telemetry.NewRegistry()
	const deducePairs = 6
	// Each instrumented run gets a throwaway registry: the engine's
	// gauge views close over engine state, so a registry shared across
	// runs would keep the previous engine reachable — ~100MB of GC
	// ballast that skews the pacing of whichever arm runs next. With a
	// fresh registry both arms allocate and drop the same object graph.
	// GC is disabled inside the timed region (a single chase allocates
	// ~50MB, well within budget): whether a run catches 1 or 2 GC
	// cycles moves it ±10%, two orders above the instrumentation cost,
	// while instrumentation's own GC pressure is visible in the
	// bytes/allocs columns (~200 allocs per chase).
	oneDeduce := func(instrumented bool) (time.Duration, int64, int64) {
		runtime.GC()
		var m *telemetry.Registry
		if instrumented {
			m = telemetry.NewRegistry()
		}
		gcOld := debug.SetGCPercent(-1)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		eng, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, Metrics: m})
		if err != nil {
			fatal(err)
		}
		eng.Deduce()
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		debug.SetGCPercent(gcOld)
		return el, int64(ms1.TotalAlloc - ms0.TotalAlloc), int64(ms1.Mallocs - ms0.Mallocs)
	}
	pairBase := entry{Name: "Deduce/telemetry_base", Ops: deducePairs}
	pairTel := entry{Name: "Deduce/telemetry", Ops: deducePairs}
	for r := 0; r < deducePairs; r++ {
		bns, bby, bal := oneDeduce(false)
		tns, tby, tal := oneDeduce(true)
		pairBase.NsPerOp += bns.Nanoseconds()
		pairBase.BytesPerOp += bby
		pairBase.AllocsPerOp += bal
		pairTel.NsPerOp += tns.Nanoseconds()
		pairTel.BytesPerOp += tby
		pairTel.AllocsPerOp += tal
	}
	pairBase.NsPerOp /= deducePairs
	pairBase.BytesPerOp /= deducePairs
	pairBase.AllocsPerOp /= deducePairs
	pairTel.NsPerOp /= deducePairs
	pairTel.BytesPerOp /= deducePairs
	pairTel.AllocsPerOp /= deducePairs
	p.pairBaseNs, p.pairTelNs = pairBase.NsPerOp, pairTel.NsPerOp
	p.entries = append(p.entries, pairTel, pairBase)

	// IncDeduce: replay a full chase's facts into a fresh engine through
	// the incremental path A_Δ. The run is pure update-driven drain — the
	// component that dominates the Fig. 6 drivers — A/B'd between the
	// sequential and the batched parallel drain.
	base, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true})
	if err != nil {
		fatal(err)
	}
	facts := base.Deduce()
	wantClasses := dcer.CanonicalClasses(base.Classes())
	for _, seq := range []bool{true, false} {
		name := "IncDeduce/parallel"
		// An explicit DrainParallelMin forces the batched path even where
		// the default would fall back to sequential (GOMAXPROCS=1 hosts).
		opts := chase.Options{ShareIndexes: true, DrainParallelMin: chase.DefaultDrainParallelMin}
		if seq {
			name = "IncDeduce/sequential"
			opts = chase.Options{ShareIndexes: true, SequentialDrain: true}
		}
		logg.Infof("benchmarking %s...", name)
		var last *chase.Engine
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, opts)
				if err != nil {
					b.Fatal(err)
				}
				eng.IncDeduce(facts)
				last = eng
			}
		})
		if got := dcer.CanonicalClasses(last.Classes()); got != wantClasses {
			fatal(fmt.Errorf("%s classes diverge from the full chase", name))
		}
		p.entries = append(p.entries, toEntry(name, r))
		if !seq {
			st := last.Stats()
			p.incDeduceStats = &st
		}
	}

	// Cache microbenchmarks: the packed-key hit path of the sharded pair
	// cache, and the feature store's bundle reuse over generated records.
	logg.Infof("benchmarking MLCache/paircache...")
	pc := mlpred.NewPairCache()
	pcID := pc.ClassifierID("bench")
	rPC := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x := relation.TID(i % (1 << 16))
			y := relation.TID((i * 7) % (1 << 16))
			if _, ok := pc.Lookup(pcID, x, y); !ok {
				pc.Store(pcID, x, y, true)
			}
		}
	})
	p.entries = append(p.entries, toEntry("MLCache/paircache", rPC))

	logg.Infof("benchmarking MLCache/featurestore...")
	fs := mlpred.NewFeatureStore(0)
	fsAttrs := fs.AttrsID([]int{1})
	tuples := g.D.Tuples()
	rFS := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var vals []relation.Value
		for i := 0; i < b.N; i++ {
			t := tuples[i%len(tuples)]
			vals = append(vals[:0], t.Values[1])
			fs.Get(t.GID, fsAttrs, vals)
		}
	})
	p.entries = append(p.entries, toEntry("MLCache/featurestore", rFS))

	for _, n := range []int{1, workers} {
		name := fmt.Sprintf("DMatch/workers=%d", n)
		logg.Infof("benchmarking %s...", name)
		var sim time.Duration
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := dmatch.Run(g.D, rules, reg, dmatch.Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimulatedTime
			}
		})
		e := toEntry(name, r)
		e.SimulatedTimeNs = int64(sim)
		p.entries = append(p.entries, e)
	}

	// One instrumented DMatch run adds the BSP stage histograms (routing,
	// per-worker busy time) and the HyPart shape to the same registry,
	// then the combined snapshot is embedded in the report.
	if _, err := dmatch.Run(g.D, rules, reg, dmatch.Options{Workers: workers, Metrics: treg}); err != nil {
		fatal(err)
	}
	p.stageHists = stageSnapshot(treg)

	if fig6 {
		cfg := experiments.Config{Scale: expScale, Workers: workers, Seed: 1}
		drivers := []struct {
			name string
			run  func(experiments.Config) *experiments.Table
		}{
			{"Fig6ab", experiments.Fig6AB},
			{"Fig6cd", experiments.Fig6CD},
			{"Fig6ef", experiments.Fig6EF},
			{"Fig6gh", experiments.Fig6GH},
			{"Fig6ij", experiments.Fig6IJ},
			{"Fig6kl", experiments.Fig6KL},
		}
		for _, d := range drivers {
			logg.Infof("benchmarking %s...", d.name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d.run(cfg)
				}
			})
			p.entries = append(p.entries, toEntry(d.name, r))
		}
	}
	return p
}

func main() {
	scale := flag.Float64("scale", 2.0, "TPCH scale for the Deduce/DMatch benchmarks (2.0 ≈ 57k tuples)")
	expScale := flag.Float64("expscale", 0.1, "experiments.Config scale for the Fig. 6 drivers")
	workers := flag.Int("workers", 8, "DMatch worker count")
	fig6 := flag.Bool("fig6", true, "also run the Fig. 6 experiment drivers")
	repeat := flag.Int("repeat", 3, "measure every benchmark this many times and keep the per-benchmark minimum")
	out := flag.String("out", "BENCH_3.json", "output JSON path")
	prev := flag.String("prev", "BENCH_2.json", "previous report to print the delta table against (empty or missing = skip)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	obs := cliutil.Register()
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}
	var stopTel func()
	var err error
	logg, stopTel, err = obs.Init("bench")
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := &report{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scale:        *scale,
		Repeat:       *repeat,
		SeedBaseline: seedBaseline,
		PR1Baseline:  pr1Baseline,
		Notes: "ns_per_op are wall-clock on this host; simulated_time_ns is the BSP makespan " +
			"(max worker time per superstep, summed), the faithful stand-in for an n-machine cluster. " +
			"The host is a shared single-core VM with ±20% run-to-run variance under external load; " +
			"every benchmark is measured `repeat` times and the per-benchmark minimum recorded " +
			"(the pr1/seed baselines were single-shot and carry the full variance). " +
			"telemetry_overhead_pct compares Deduce with the metrics registry attached against an " +
			"interleaved uninstrumented arm (same-pass sums, GC quiesced inside the timed region, " +
			"least-loaded pass); stage_histograms are the per-stage latency distributions of the " +
			"telemetry-enabled pass.",
	}

	logg.Infof("generating TPCH scale %.2f...", *scale)
	g := datagen.TPCH(datagen.TPCHOptions{Scale: *scale, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		fatal(err)
	}
	for _, rel := range g.D.Relations {
		rep.Tuples += len(rel.Tuples)
	}
	rep.Rules = len(rules)

	// Measure `repeat` full passes and keep, per benchmark, the entry with
	// the minimum ns/op (and the engine stats of the best parallel
	// IncDeduce pass). The merge preserves first-pass ordering. Every pass
	// re-asserts the sequential/parallel class identity, so the flag below
	// reports the conjunction over all passes.
	best := map[string]entry{}
	var order []string
	var bestPairCombined int64
	for r := 0; r < *repeat; r++ {
		if *repeat > 1 {
			logg.Infof("--- pass %d/%d ---", r+1, *repeat)
		}
		p := runPass(g, rules, *workers, *fig6, *expScale)
		for _, e := range p.entries {
			prevBest, seen := best[e.Name]
			if !seen {
				order = append(order, e.Name)
			}
			if !seen || e.NsPerOp < prevBest.NsPerOp {
				best[e.Name] = e
				if e.Name == "IncDeduce/parallel" {
					rep.IncDeduceStats = p.incDeduceStats
				}
				if e.Name == "Deduce/telemetry" {
					rep.StageHistograms = p.stageHists
				}
			}
		}
		if combined := p.pairBaseNs + p.pairTelNs; p.pairBaseNs > 0 &&
			(bestPairCombined == 0 || combined < bestPairCombined) {
			bestPairCombined = combined
			rep.TelemetryOverheadPct = 100 * float64(p.pairTelNs-p.pairBaseNs) / float64(p.pairBaseNs)
		}
	}
	rep.ClassesIdentical = true // runPass fatals on any divergence
	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, best[name])
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, best of %d)\n", *out, len(rep.Benchmarks), *repeat)
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %3d ops  %12d ns/op  %10d allocs/op\n", e.Name, e.Ops, e.NsPerOp, e.AllocsPerOp)
	}
	fmt.Printf("telemetry overhead: %+.2f%% (Deduce/telemetry vs its interleaved uninstrumented arm, least-loaded pass)\n",
		rep.TelemetryOverheadPct)
	printAttribution(rep)
	printDelta(rep, *prev)
}

// printAttribution breaks the instrumented time down by stage: each
// duration histogram's share of the total time the telemetry pass saw.
func printAttribution(rep *report) {
	sums := map[string]float64{}
	var total float64
	for _, h := range rep.StageHistograms {
		if !strings.HasSuffix(h.Name, "_ns") {
			continue
		}
		sums[h.Name] += h.Sum
		total += h.Sum
	}
	if total == 0 {
		return
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return sums[names[i]] > sums[names[j]] })
	fmt.Println("stage attribution (telemetry pass, summed over instrumented regions):")
	for _, n := range names {
		fmt.Printf("  %-32s %12s  %5.1f%%\n", n, time.Duration(sums[n]).Round(time.Millisecond), 100*sums[n]/total)
	}
}

// printDelta compares the run against a previous BENCH_<n>.json report.
func printDelta(rep *report, path string) {
	if path == "" {
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		logg.Warnf("no previous report %s: %v", path, err)
		return
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		logg.Warnf("unreadable previous report %s: %v", path, err)
		return
	}
	prevNs := make(map[string]int64, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		prevNs[e.Name] = e.NsPerOp
	}
	fmt.Printf("vs %s:\n", path)
	for _, e := range rep.Benchmarks {
		if p, ok := prevNs[e.Name]; ok && p > 0 {
			fmt.Printf("  %-24s %12d -> %12d ns/op  %+6.1f%%\n",
				e.Name, p, e.NsPerOp, 100*float64(e.NsPerOp-p)/float64(p))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
