// Command bench is the repo's performance harness: it benchmarks the
// chase hot path (first-pass Deduce, sequential vs concurrent), the
// incremental IncDeduce drain, the ML caches, the HyPart partitioner
// (seed-era reference vs the packed-key rewrite, sequential and sharded),
// the full parallel DMatch run (in-process, and the DMatchDist arms as
// true separate worker processes over TCP with the binary wire codec),
// the wire codec's symbol dictionary in isolation, and the Fig. 6
// experiment drivers on the synthetic generators, then writes the
// results to a JSON file
// (BENCH_<n>.json by convention, one per perf PR) so the performance
// trajectory of the engine is tracked in-repo. The report also embeds the
// instrumented DMatch run's routing profile (messages routed/deduped,
// route time per superstep, adaptive rebalances) as routing_stats.
//
//	go run ./cmd/bench                   # full run, writes BENCH_10.json
//	go run ./cmd/bench -fig6=false       # hot-path benchmarks only
//	go run ./cmd/bench -scale 1.0 -out /tmp/bench.json
//	go run ./cmd/bench -cpuprofile cpu.out -memprofile mem.out
//	go run ./cmd/bench -repeat 5         # more noise suppression
//	go run ./cmd/bench -telemetry :9090  # live /metrics + pprof while it runs
//	go run ./cmd/bench -arms '^Ingest'   # only arms matching the regex
//	go run ./cmd/bench -mem1m            # 1M-tuple arm under its 1.5 GiB default budget
//	go run ./cmd/bench -plandump         # also print the compiled predicate programs
//
// The Deduce and IncDeduce families carry a plan=off|on A/B: plan=off
// forces Options.InterpretRules (the conjunct-at-a-time rule
// interpreter), plan=on is the default compiled-predicate-plan path.
// The report embeds a per-rule attribution table pairing the two modes'
// dcer_chase_rule_enumerate_ns sums into speedups (plan_attribution)
// and the compiled programs with their observed selectivities
// (plan_report, printed by -plandump).
//
// Besides the timing arms the harness runs storage arms at -memscale
// (default 20, ≈573K tuples): a bulk-ingest arm and a full Deduce arm,
// each recording total allocations, live heap after a forced GC, bytes
// per tuple, and the process peak RSS (VmHWM, reset per arm via
// /proc/self/clear_refs where permitted). -membudget bounds the Deduce
// arm's chase (Options.MemBudgetBytes); -mem1m adds a ~1M-tuple
// ingest+chase arm bounded by -mem1mbudget (default 1.5 GiB). A
// budgeted arm also sets the Go runtime soft memory limit to the
// budget so GC headroom stays inside the same envelope. The memory
// rows land in the report's "memory" section and are delta-printed
// against -prev.
//
// Besides the timings the report embeds the per-stage latency histograms
// of a telemetry-enabled pass (rule enumeration/merge, drain batches, BSP
// routing and worker busy time) and the measured overhead of running
// Deduce with instrumentation attached — the metrics registry, the
// justification (provenance) log, and the health observatory (invariant
// auditors + stall heartbeats + accuracy sampling), each against the same
// interleaved uninstrumented arm; IncDeduce gets its own paired
// health-on/health-off measurement. After writing the JSON it prints a
// stage-attribution table and a delta table against the previous
// BENCH_<n>.json (-prev).
//
// The host class these artifacts are measured on (a shared single-core
// VM) shows ±20% run-to-run variance under external load, so the
// harness measures every benchmark -repeat times (default 3) and
// records the per-benchmark minimum — the least noise-contaminated
// sample, the same rationale as benchstat's use of repeated runs.
//
// The Deduce and IncDeduce benchmarks assert that the sequential and
// parallel paths reach byte-identical equivalence classes before
// reporting numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dcer"
	"dcer/internal/chase"
	"dcer/internal/cliutil"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/eval"
	"dcer/internal/experiments"
	"dcer/internal/health"
	"dcer/internal/hypart"
	"dcer/internal/mlpred"
	"dcer/internal/provenance"
	"dcer/internal/relation"
	"dcer/internal/telemetry"
	"dcer/internal/wire"
)

// logg is the progress logger, configured in main (DCER_LOG / -log).
var logg *telemetry.Logger

// entry is one benchmark measurement.
type entry struct {
	Name            string `json:"name"`
	Ops             int    `json:"ops"`
	NsPerOp         int64  `json:"ns_per_op"`
	BytesPerOp      int64  `json:"bytes_per_op"`
	AllocsPerOp     int64  `json:"allocs_per_op"`
	SimulatedTimeNs int64  `json:"simulated_time_ns,omitempty"`
}

// memEntry is one storage-arm measurement: how much memory a bulk
// ingest or a full chase leaves live, per tuple, and the process peak
// RSS the arm drove. NsTotal/AllocsTotal cover the whole arm (these
// arms run once, not under testing.Benchmark — at scale 20 a single
// Deduce is tens of seconds and the interesting axis is bytes, not
// noise-suppressed ns).
type memEntry struct {
	Name            string  `json:"name"`
	Scale           float64 `json:"scale"`
	Tuples          int     `json:"tuples"`
	Facts           int     `json:"facts,omitempty"`
	NsTotal         int64   `json:"ns_total"`
	AllocsTotal     int64   `json:"allocs_total"`
	AllocBytesTotal int64   `json:"alloc_bytes_total"`
	// LiveHeapBytes is the absolute HeapAlloc after a forced GC at the
	// end of the arm; DeltaLiveBytes is the arm's own addition over the
	// heap it started from, and BytesPerTuple = DeltaLiveBytes / Tuples.
	LiveHeapBytes  int64   `json:"live_heap_bytes"`
	DeltaLiveBytes int64   `json:"delta_live_bytes"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
	// PeakRSSBytes is VmHWM from /proc/self/status after the arm.
	// PeakRSSReset records whether the peak was reset at arm start
	// (requires /proc/self/clear_refs write permission); when false the
	// peak accumulates across arms and only the last arm's value is a
	// faithful per-arm number.
	PeakRSSBytes   int64 `json:"peak_rss_bytes"`
	PeakRSSReset   bool  `json:"peak_rss_reset"`
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// stageHist is one per-stage latency histogram snapshot from the
// telemetry-enabled pass, embedded in the report so stage attribution
// travels with the timings.
type stageHist struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    uint64  `json:"p50"`
	P99    uint64  `json:"p99"`
	Max    uint64  `json:"max"`
}

// routingStats summarizes the instrumented DMatch run's message routing:
// batch sizes, dedup effectiveness, and the master's per-superstep route
// cost, so the routing trajectory is tracked next to the timings.
type routingStats struct {
	Workers         int   `json:"workers"`
	Supersteps      int   `json:"supersteps"`
	MessagesRouted  int64 `json:"messages_routed"`
	MessagesDeduped int64 `json:"messages_deduped"`
	RouteNsTotal    int64 `json:"route_ns_total"`
	RouteNsPerStep  int64 `json:"route_ns_per_step"`
	Rebalances      int   `json:"rebalances"`
}

// report is the BENCH_<n>.json document.
type report struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS is the benchmark-time scheduler width and NumCPU the
	// machine's logical core count — recorded separately because the
	// concurrent arms' speedups only mean something relative to the
	// cores actually available (cmd/benchdiff warns when comparing
	// reports whose values differ).
	GOMAXPROCS       int     `json:"gomaxprocs"`
	NumCPU           int     `json:"numcpu"`
	Scale            float64 `json:"scale"`
	Repeat           int     `json:"repeat"`
	Tuples           int     `json:"tuples"`
	Rules            int     `json:"rules"`
	ClassesIdentical bool    `json:"classes_identical"`
	Benchmarks       []entry `json:"benchmarks"`
	// Memory holds the storage-arm rows (bulk ingest, scale-20 Deduce,
	// optional 1M budgeted chase): live-heap bytes per tuple and peak
	// RSS, the axes the columnar-storage work is measured on.
	Memory []memEntry `json:"memory,omitempty"`
	// IncDeduceStats snapshots the engine counters of the best parallel
	// IncDeduce run: ML pair-cache hits/misses/size and feature-store
	// hits/misses/entries, so the cache effectiveness is tracked in-repo
	// next to the timings.
	IncDeduceStats *chase.Stats `json:"incdeduce_stats,omitempty"`
	// TelemetryOverheadPct is ns/op of Deduce/telemetry relative to
	// Deduce/telemetry_base, its paired uninstrumented arm: the cost of
	// running the same chase with the metrics registry, per-rule
	// histograms, and tracer attached. The arms interleave chase by
	// chase (each run after a forced GC) into triples — base,
	// telemetry, provenance back to back — and the pct is the median
	// per-triple ratio over every triple of every pass, so a load
	// spike corrupting one triple is discarded instead of skewing a
	// sum.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// ProvenanceOverheadPct is the same paired measurement for
	// Deduce/provenance — the chase with an unbounded justification log
	// attached — against the shared uninstrumented arm. The acceptance
	// budget for capture is ≤ 5%.
	ProvenanceOverheadPct float64 `json:"provenance_overhead_pct"`
	// HealthOverheadPct is the same paired measurement for Deduce/health —
	// the chase running under a started health monitor (drain heartbeat,
	// periodic invariant auditors, accuracy sampling against the planted
	// truth; engine metrics stay nil so the health cost is isolated) —
	// against the shared uninstrumented arm. Budget ≤ 5%.
	HealthOverheadPct float64 `json:"health_overhead_pct"`
	// HealthIncOverheadPct is the paired health-on/health-off measurement
	// over the incremental drain (IncDeduce/health vs IncDeduce/health_base,
	// interleaved pairs, median per-pair ratio). Budget ≤ 5%.
	HealthIncOverheadPct float64 `json:"health_inc_overhead_pct"`
	// RoutingStats snapshots the instrumented DMatch run's routing
	// profile (messages routed/deduped, route time per superstep,
	// adaptive rebalances), from the same pass as StageHistograms.
	RoutingStats *routingStats `json:"routing_stats,omitempty"`
	// WireStats snapshots the wire-level counters of each distributed
	// DMatchDist arm (bytes and frames actually on the wire, encode and
	// decode time, dictionary effectiveness), keyed by arm name, from the
	// same pass whose timing the arm kept.
	WireStats map[string]wire.Snapshot `json:"wire_stats,omitempty"`
	// WireDictRatio is the codec arm's measured symbol compression:
	// what re-sending every ML fact's model string inline would cost,
	// over the dictionary bytes plus one varint id per fact actually
	// shipped. Acceptance: ≥ 3.
	WireDictRatio float64 `json:"wire_dict_ratio,omitempty"`
	// StageHistograms are the per-stage latency histograms of the
	// telemetry-enabled pass (chase rule enumeration/merge, drain
	// batches, DMatch routing and worker busy time, HyPart shape).
	StageHistograms []stageHist `json:"stage_histograms,omitempty"`
	// PlanAttribution is the per-rule enumerate-time A/B between the rule
	// interpreter and the compiled predicate plans: one telemetry-attached
	// Deduce per mode, per-rule dcer_chase_rule_enumerate_ns sums paired
	// into speedups, with the plan-side predicate-eval and reorder counts.
	PlanAttribution []planRuleRow `json:"plan_attribution,omitempty"`
	// PlanReport snapshots the compiled predicate programs of the plan=on
	// attribution run — per-variable step order with observed pass/fail
	// selectivities (also printed by -plandump).
	PlanReport *chase.PlanReport `json:"plan_report,omitempty"`
	// SeedBaseline carries the measurements taken at the growth seed
	// (before PR 1), on the same host class, for trajectory comparison;
	// PR1Baseline carries the BENCH_1.json numbers forward the same way.
	SeedBaseline []entry `json:"seed_baseline"`
	PR1Baseline  []entry `json:"pr1_baseline"`
	Notes        string  `json:"notes"`
}

// seedBaseline was measured at the seed commit (pre PR 1) on the same
// dataset (TPCH scale 2.0, Dup 0.3, seed 1 → 57336 tuples, 6 rules) and
// host class (single-core 2.1 GHz Xeon). Deduce had no concurrent mode
// then, so the sequential number doubles as the seed hot-path number.
var seedBaseline = []entry{
	{Name: "Deduce/sequential@seed", Ops: 3, NsPerOp: 2226823835, BytesPerOp: 119643338, AllocsPerOp: 4343969},
	{Name: "DMatch/workers=8@seed", Ops: 3, NsPerOp: 6390755182, BytesPerOp: 525228584, AllocsPerOp: 14412321},
}

// pr1Baseline carries the BENCH_1.json measurements (PR 1: parallel
// Deduce + benchmark harness) forward, same dataset and host class.
// BENCH_1.json was a single-shot run, so each number carries the full
// run-to-run variance of the host.
var pr1Baseline = []entry{
	{Name: "Deduce/sequential@pr1", Ops: 1, NsPerOp: 1015453634, BytesPerOp: 68800568, AllocsPerOp: 642886},
	{Name: "Deduce/concurrent@pr1", Ops: 2, NsPerOp: 910244517, BytesPerOp: 106206800, AllocsPerOp: 592040},
	{Name: "DMatch/workers=1@pr1", Ops: 2, NsPerOp: 935345041, BytesPerOp: 127518144, AllocsPerOp: 765996, SimulatedTimeNs: 934009951},
	{Name: "DMatch/workers=8@pr1", Ops: 1, NsPerOp: 3097758138, BytesPerOp: 492571408, AllocsPerOp: 8590142, SimulatedTimeNs: 1239973263},
	{Name: "Fig6ab@pr1", Ops: 1, NsPerOp: 1668058948, BytesPerOp: 303708960, AllocsPerOp: 7323815},
	{Name: "Fig6cd@pr1", Ops: 1, NsPerOp: 7763902213, BytesPerOp: 1655836248, AllocsPerOp: 31746956},
	{Name: "Fig6ef@pr1", Ops: 1, NsPerOp: 1858777470, BytesPerOp: 524741304, AllocsPerOp: 11647929},
	{Name: "Fig6gh@pr1", Ops: 1, NsPerOp: 21496055151, BytesPerOp: 4197169360, AllocsPerOp: 102110321},
	{Name: "Fig6ij@pr1", Ops: 1, NsPerOp: 34271023613, BytesPerOp: 6302184392, AllocsPerOp: 146772635},
	{Name: "Fig6kl@pr1", Ops: 1, NsPerOp: 58820695233, BytesPerOp: 9841052352, AllocsPerOp: 143923008},
}

// planRuleRow is one row of the per-rule plan attribution table.
type planRuleRow struct {
	Rule      string  `json:"rule"`
	InterpNs  float64 `json:"interp_ns"`
	PlanNs    float64 `json:"plan_ns"`
	Speedup   float64 `json:"speedup"`
	PredEvals int64   `json:"plan_preds_evaluated"`
	Reorders  int64   `json:"plan_reorders"`
}

// runPlanAttribution runs one telemetry-attached Deduce per mode — the
// rule interpreter, then the compiled plans — and pairs the per-rule
// dcer_chase_rule_enumerate_ns sums into a speedup table, annotated with
// the plan run's per-rule predicate-eval and adaptive-reorder counts.
func runPlanAttribution(g *datagen.Generated, rules []*dcer.Rule, reg *mlpred.Registry) ([]planRuleRow, *chase.PlanReport) {
	perRule := func(interpret bool) (map[string]float64, *chase.Engine) {
		treg := telemetry.NewRegistry()
		eng, err := chase.New(g.D, rules, reg, chase.Options{
			ShareIndexes: true, Metrics: treg, InterpretRules: interpret,
		})
		if err != nil {
			fatal(err)
		}
		eng.Deduce()
		sums := map[string]float64{}
		for _, s := range treg.Snapshot() {
			if s.Name != "dcer_chase_rule_enumerate_ns" || s.Histogram == nil {
				continue
			}
			for _, l := range s.Labels {
				if l.Key == "rule" {
					sums[l.Value] += s.Histogram.Sum
				}
			}
		}
		return sums, eng
	}
	interp, _ := perRule(true)
	plan, eng := perRule(false)
	prep := eng.PlanReport()
	predEvals := map[string]int64{}
	reorders := map[string]int64{}
	for _, rr := range prep.Rules {
		var evals int64
		for _, v := range rr.Vars {
			for _, pd := range v.Preds {
				evals += pd.Evals
			}
		}
		predEvals[rr.Rule] = evals
		reorders[rr.Rule] = rr.Reorders
	}
	names := make([]string, 0, len(interp))
	for n := range interp {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]planRuleRow, 0, len(names))
	for _, n := range names {
		row := planRuleRow{
			Rule: n, InterpNs: interp[n], PlanNs: plan[n],
			PredEvals: predEvals[n], Reorders: reorders[n],
		}
		if row.PlanNs > 0 {
			row.Speedup = row.InterpNs / row.PlanNs
		}
		rows = append(rows, row)
	}
	return rows, &prep
}

func toEntry(name string, r testing.BenchmarkResult) entry {
	return entry{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// pass is one full measurement of every benchmark; the merge over
// repeated passes keeps, per benchmark name, the entry with the minimum
// ns/op.
type pass struct {
	entries        []entry
	incDeduceStats *chase.Stats
	stageHists     []stageHist
	routing        *routingStats
	wireStats      map[string]wire.Snapshot
	dictRatio      float64
	// pairSamples holds this pass's interleaved overhead quads —
	// ns per chase for (base, telemetry, provenance, health), the four
	// runs of each quad back to back so they saw the same external load.
	pairSamples [][4]int64
	// incHealthSamples holds the paired IncDeduce runs — ns per drain for
	// (health off, health on), each pair back to back.
	incHealthSamples [][2]int64
}

// stageSnapshot flattens a registry's populated histograms into the
// report's embedded form.
func stageSnapshot(reg *telemetry.Registry) []stageHist {
	var out []stageHist
	for _, s := range reg.Snapshot() {
		if s.Histogram == nil || s.Histogram.Count == 0 {
			continue
		}
		var lbls []string
		for _, l := range s.Labels {
			lbls = append(lbls, l.Key+"="+l.Value)
		}
		out = append(out, stageHist{
			Name:   s.Name,
			Labels: strings.Join(lbls, ","),
			Count:  s.Histogram.Count,
			Sum:    s.Histogram.Sum,
			P50:    s.Histogram.Quantile(0.5),
			P99:    s.Histogram.Quantile(0.99),
			Max:    s.Histogram.Max,
		})
	}
	return out
}

// armRE, when non-nil, restricts which benchmark arms run (-arms).
var armRE *regexp.Regexp

// benchScale is the -scale the timing dataset was generated at, recorded
// so the DMatchDist worker processes can regenerate the identical
// dataset from the same seed (the distributed handshake fingerprint
// rejects them otherwise).
var benchScale float64

// benchWorkerEnv is the env var that turns a re-exec of this binary into
// a distributed DMatch worker process for the DMatchDist arms.
const benchWorkerEnv = "DCER_BENCH_WORKER"

// benchWorkerMain is the worker half of the DMatchDist arms: regenerate
// the master's dataset from the shared seed, serve supersteps, exit.
func benchWorkerMain() {
	addr := os.Getenv("DCER_BENCH_ADDR")
	id, err := strconv.Atoi(os.Getenv("DCER_BENCH_WORKER_ID"))
	if err != nil {
		fatal(fmt.Errorf("bad DCER_BENCH_WORKER_ID: %w", err))
	}
	scale, err := strconv.ParseFloat(os.Getenv("DCER_BENCH_SCALE"), 64)
	if err != nil {
		fatal(fmt.Errorf("bad DCER_BENCH_SCALE: %w", err))
	}
	g := datagen.TPCH(datagen.TPCHOptions{Scale: scale, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		fatal(err)
	}
	if err := dmatch.RunWorker(addr, g.D, rules, mlpred.DefaultRegistry(), dmatch.WorkerOptions{Worker: id}); err != nil {
		fatal(err)
	}
	os.Exit(0)
}

// runDistributedArms times the true multi-process DMatch at 2 and 4
// worker processes: each worker is a re-exec of this binary (own address
// space, TCP to the master), so the arm pays real serialization, real
// sockets, and real process scheduling. The arms run once per pass (the
// repeat-and-keep-minimum merge suppresses noise, same as every arm) and
// keep the run's wire-level counters next to the timing.
func runDistributedArms(p *pass, g *datagen.Generated, rules []*dcer.Rule, reg *mlpred.Registry) {
	exe, exeErr := os.Executable()
	for _, n := range []int{2, 4} {
		name := fmt.Sprintf("DMatchDist/workers=%d", n)
		if !armOn(name) {
			continue
		}
		if exeErr != nil {
			logg.Warnf("skipping %s: cannot locate own binary: %v", name, exeErr)
			return
		}
		logg.Infof("benchmarking %s (separate worker processes over TCP)...", name)
		var procs []*exec.Cmd
		spawn := func(w int, addr string) error {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				benchWorkerEnv+"=1",
				"DCER_BENCH_ADDR="+addr,
				"DCER_BENCH_WORKER_ID="+strconv.Itoa(w),
				"DCER_BENCH_SCALE="+strconv.FormatFloat(benchScale, 'g', -1, 64))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			procs = append(procs, cmd)
			return nil
		}
		t0 := time.Now()
		res, err := dmatch.RunDistributed(g.D, rules, reg, dmatch.Options{Workers: n}, dmatch.DistOptions{Spawn: spawn})
		el := time.Since(t0)
		for _, pr := range procs {
			pr.Wait()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		p.entries = append(p.entries, entry{
			Name: name, Ops: 1, NsPerOp: el.Nanoseconds(),
			SimulatedTimeNs: int64(res.SimulatedTime),
		})
		if p.wireStats == nil {
			p.wireStats = map[string]wire.Snapshot{}
		}
		p.wireStats[name] = res.Wire
	}
}

// runWireCodecArm measures the wire codec in isolation: encoding
// superstep batches of ML facts (the realistic shape — few classifier
// names, many facts) and the symbol-dictionary ratio against naive
// inline strings.
func runWireCodecArm(p *pass) {
	const name = "WireCodec/dict"
	if !armOn(name) {
		return
	}
	logg.Infof("benchmarking %s...", name)
	models := []string{"lev075", "jaro085", "bert-mini", "ditto"}
	facts := make([]chase.Fact, 2000)
	for i := range facts {
		facts[i] = chase.Fact{
			Kind:  chase.FactML,
			Model: models[i%len(models)],
			A:     relation.TID(i),
			B:     relation.TID(i*7 + 1),
		}
	}
	var stats wire.Stats
	var totalFacts int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := wire.NewEncoder(io.Discard, &stats)
			for step := 0; step < 20; step++ {
				if err := enc.Step(wire.Step{Step: step, Facts: facts}); err != nil {
					b.Fatal(err)
				}
				totalFacts += int64(len(facts))
			}
		}
	})
	p.entries = append(p.entries, toEntry(name, r))
	s := stats.Snapshot()
	// Actual symbol cost on the wire: the dictionary deltas plus roughly
	// one varint id byte per ML fact (ids stay tiny with few models).
	if actual := s.DictBytes + totalFacts; actual > 0 {
		p.dictRatio = float64(s.NaiveSymBytes) / float64(actual)
	}
}

// armOn reports whether the named arm is selected by -arms.
func armOn(name string) bool { return armRE == nil || armRE.MatchString(name) }

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status. Returns 0 if unreadable (non-Linux).
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				kb, _ := strconv.ParseInt(f[0], 10, 64)
				return kb * 1024
			}
		}
	}
	return 0
}

// resetPeakRSS resets VmHWM to the current RSS so each storage arm
// reports its own peak. Writing "5" to /proc/self/clear_refs needs
// CAP_SYS_RESOURCE; failure is reported, not fatal.
func resetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// runStorageArms measures the memory axes the columnar storage work
// targets: a bulk-ingest arm and a full Deduce arm at memscale
// (~573K tuples at 20), plus an optional ~1M-tuple ingest+chase arm
// under a memory budget (-mem1m/-membudget). Each arm starts from a
// GC'd, OS-returned heap with the RSS high-water mark reset, so
// DeltaLiveBytes and PeakRSSBytes attribute to the arm alone.
func runStorageArms(memscale float64, mem1m bool, budget, budget1m int64) []memEntry {
	var out []memEntry
	reg := mlpred.DefaultRegistry()

	measure := func(name string, scale float64, budget int64, run func() (tuples, facts int)) {
		if !armOn(name) {
			return
		}
		logg.Infof("measuring %s...", name)
		runtime.GC()
		debug.FreeOSMemory()
		rssReset := resetPeakRSS()
		if budget > 0 {
			// A budgeted arm is a budgeted process: the engine bounds its
			// own structures against MemBudgetBytes, and the runtime soft
			// limit keeps GC headroom inside the same envelope so peak RSS
			// tracks the budget rather than 2x the live heap.
			prev := debug.SetMemoryLimit(budget)
			defer debug.SetMemoryLimit(prev)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		tuples, facts := run()
		el := time.Since(t0)
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		e := memEntry{
			Name:            name,
			Scale:           scale,
			Tuples:          tuples,
			Facts:           facts,
			NsTotal:         el.Nanoseconds(),
			AllocsTotal:     int64(ms1.Mallocs - ms0.Mallocs),
			AllocBytesTotal: int64(ms1.TotalAlloc - ms0.TotalAlloc),
			LiveHeapBytes:   int64(ms1.HeapAlloc),
			DeltaLiveBytes:  int64(ms1.HeapAlloc) - int64(ms0.HeapAlloc),
			PeakRSSBytes:    peakRSSBytes(),
			PeakRSSReset:    rssReset,
			MemBudgetBytes:  budget,
		}
		if tuples > 0 {
			e.BytesPerTuple = float64(e.DeltaLiveBytes) / float64(tuples)
		}
		out = append(out, e)
	}

	if memscale > 0 {
		var g *datagen.Generated
		var rules []*dcer.Rule
		scaleName := strconv.FormatFloat(memscale, 'g', -1, 64)
		measure("Ingest/scale"+scaleName, memscale, 0, func() (int, int) {
			g = datagen.TPCH(datagen.TPCHOptions{Scale: memscale, Dup: 0.3, Seed: 1})
			var err error
			if rules, err = g.Rules(); err != nil {
				fatal(err)
			}
			return g.D.Size(), 0
		})
		if g == nil {
			// The ingest arm was filtered out but Deduce still needs data.
			g = datagen.TPCH(datagen.TPCHOptions{Scale: memscale, Dup: 0.3, Seed: 1})
			var err error
			if rules, err = g.Rules(); err != nil {
				fatal(err)
			}
		}
		var eng *chase.Engine
		measure("Deduce/scale"+scaleName, memscale, budget, func() (int, int) {
			var err error
			eng, err = chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, MemBudgetBytes: budget})
			if err != nil {
				fatal(err)
			}
			facts := eng.Deduce()
			return g.D.Size(), len(facts)
		})
		runtime.KeepAlive(eng)
		eng = nil
		// The same chase with the rule interpreter instead of the compiled
		// plans: the large-scale end of the plan=off|on A/B (NsTotal is the
		// timing axis here; the arm runs once, not noise-suppressed).
		measure("Deduce/scale"+scaleName+"/plan=off", memscale, budget, func() (int, int) {
			var err error
			eng, err = chase.New(g.D, rules, reg, chase.Options{
				ShareIndexes: true, MemBudgetBytes: budget, InterpretRules: true,
			})
			if err != nil {
				fatal(err)
			}
			facts := eng.Deduce()
			return g.D.Size(), len(facts)
		})
		runtime.KeepAlive(eng)
		// Drop the references so the 1M arm (or the caller) starts from a
		// reclaimable heap.
		eng, g, rules = nil, nil, nil
		runtime.KeepAlive(eng)
	}

	if mem1m {
		// TPCH scale 35 ≈ 1.0M tuples: ingest and chase measured as one
		// arm, the whole pipeline held under the configured budget.
		const mScale = 35.0
		var eng *chase.Engine
		measure("Chase1M/membudget", mScale, budget1m, func() (int, int) {
			g := datagen.TPCH(datagen.TPCHOptions{Scale: mScale, Dup: 0.3, Seed: 1})
			rules, err := g.Rules()
			if err != nil {
				fatal(err)
			}
			eng, err = chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, MemBudgetBytes: budget1m})
			if err != nil {
				fatal(err)
			}
			facts := eng.Deduce()
			return g.D.Size(), len(facts)
		})
		runtime.KeepAlive(eng)
	}
	return out
}

func runPass(g *datagen.Generated, rules []*dcer.Rule, workers int, fig6 bool, expScale float64) *pass {
	reg := mlpred.DefaultRegistry()
	p := &pass{}

	// Deduce arms: the sequential/concurrent pair tracked since PR 1, plus
	// the compiled-plan A/B — plan=off forces Options.InterpretRules (the
	// conjunct-at-a-time interpreter), plan=on is the default vectorized
	// predicate-plan path, both over the concurrent first pass. Every arm
	// must land on identical equivalence classes.
	classes := map[string]string{}
	for _, arm := range []struct {
		name string
		opts chase.Options
	}{
		{"Deduce/sequential", chase.Options{ShareIndexes: true, SequentialDeduce: true}},
		{"Deduce/concurrent", chase.Options{ShareIndexes: true}},
		{"Deduce/plan=off", chase.Options{ShareIndexes: true, InterpretRules: true}},
		{"Deduce/plan=on", chase.Options{ShareIndexes: true}},
	} {
		if !armOn(arm.name) {
			continue
		}
		logg.Infof("benchmarking %s...", arm.name)
		var last *chase.Engine
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				eng.Deduce()
				last = eng
			}
		})
		classes[arm.name] = dcer.CanonicalClasses(last.Classes())
		p.entries = append(p.entries, toEntry(arm.name, r))
	}
	var firstArm, firstClasses string
	for name, c := range classes {
		if firstArm == "" || name < firstArm {
			firstArm, firstClasses = name, c
		}
	}
	for name, c := range classes {
		if c != firstClasses {
			fatal(fmt.Errorf("%s and %s disagree on equivalence classes", firstArm, name))
		}
	}

	// The same concurrent Deduce with the registry live: per-rule
	// histograms, drain instruments, gauge views, tracer. A single ~1s
	// sample on this host class is dominated by GC-cycle boundary luck
	// and neighbor steal (±10-30%), far above the instrumentation cost,
	// so the overhead is measured with tightly interleaved triples —
	// one uninstrumented chase, one with telemetry, one with the
	// justification log, one under the health monitor, each after a
	// forced GC, deducePairs times per pass: the four runs of a quad see
	// the same external load, so per-quad ratios cancel host drift. The
	// report keeps the median ratio over every quad of every pass
	// (medianOverheadPct), which discards the quads a load spike
	// corrupted outright — on this host a single spike otherwise moves
	// even a best-pass sum by several percent, above the effect being
	// measured.
	treg := telemetry.NewRegistry()
	if armOn("Deduce/telemetry") {
		logg.Infof("benchmarking Deduce/telemetry, Deduce/provenance and Deduce/health (paired overhead samples)...")
		runOverheadQuads(p, g, rules, reg)
	}
	runIncDeduceArms(p, g, rules, reg, workers, fig6, expScale, treg)
	return p
}

// runOverheadQuads measures the telemetry, provenance and health overhead
// arms as tightly interleaved quads (see the comment at the call site).
// Each instrumented run gets a throwaway registry: the engine's
// gauge views close over engine state, so a registry shared across
// runs would keep the previous engine reachable — ~100MB of GC
// ballast that skews the pacing of whichever arm runs next. With a
// fresh registry both arms allocate and drop the same object graph.
// GC is disabled inside the timed region (a single chase allocates
// ~50MB, well within budget): whether a run catches 1 or 2 GC
// cycles moves it ±10%, two orders above the instrumentation cost,
// while instrumentation's own GC pressure is visible in the
// bytes/allocs columns (~200 allocs per chase).
func runOverheadQuads(p *pass, g *datagen.Generated, rules []*dcer.Rule, reg *mlpred.Registry) {
	const deducePairs = 6
	truth := eval.NewTruth(g.Truth)
	// newHealthMonitor builds the health arm's monitor: its own registry
	// (the engine's Metrics stays nil so the measurement isolates the
	// health cost from the telemetry cost), the planted truth driving the
	// accuracy observatory, and a started watchdog — the full health-on
	// configuration minus classifier calibration, which would have to
	// mutate the shared mlpred registry and so contaminate the base arm
	// (its cost is one atomic add per classifier call).
	newHealthMonitor := func() *health.Monitor {
		return health.NewMonitor(health.Options{
			Registry:     telemetry.NewRegistry(),
			DiagnosisDir: os.TempDir(),
			Truth:        truth,
			Seed:         1,
		})
	}
	oneDeduce := func(instrumented, prov, healthOn bool) (time.Duration, int64, int64) {
		var mon *health.Monitor
		if healthOn {
			mon = newHealthMonitor()
			mon.Start()
		}
		runtime.GC()
		var m *telemetry.Registry
		if instrumented {
			m = telemetry.NewRegistry()
		}
		// The provenance arm captures into a fresh unbounded log, the
		// worst case for the record path (no drops, every derivation
		// justified).
		var plog *provenance.Log
		if prov {
			plog = provenance.NewLog(-1)
		}
		gcOld := debug.SetGCPercent(-1)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		eng, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, Metrics: m, Provenance: plog, Health: mon})
		if err != nil {
			fatal(err)
		}
		eng.Deduce()
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		debug.SetGCPercent(gcOld)
		if mon != nil {
			mon.Stop()
		}
		return el, int64(ms1.TotalAlloc - ms0.TotalAlloc), int64(ms1.Mallocs - ms0.Mallocs)
	}
	pairBase := entry{Name: "Deduce/telemetry_base", Ops: deducePairs}
	pairTel := entry{Name: "Deduce/telemetry", Ops: deducePairs}
	pairProv := entry{Name: "Deduce/provenance", Ops: deducePairs}
	pairHealth := entry{Name: "Deduce/health", Ops: deducePairs}
	add := func(e *entry, ns time.Duration, by, al int64) {
		e.NsPerOp += ns.Nanoseconds()
		e.BytesPerOp += by
		e.AllocsPerOp += al
	}
	for r := 0; r < deducePairs; r++ {
		bns, bby, bal := oneDeduce(false, false, false)
		add(&pairBase, bns, bby, bal)
		tns, tby, tal := oneDeduce(true, false, false)
		add(&pairTel, tns, tby, tal)
		pns, pby, pal := oneDeduce(false, true, false)
		add(&pairProv, pns, pby, pal)
		hns, hby, hal := oneDeduce(false, false, true)
		add(&pairHealth, hns, hby, hal)
		p.pairSamples = append(p.pairSamples,
			[4]int64{bns.Nanoseconds(), tns.Nanoseconds(), pns.Nanoseconds(), hns.Nanoseconds()})
	}
	for _, e := range []*entry{&pairBase, &pairTel, &pairProv, &pairHealth} {
		e.NsPerOp /= deducePairs
		e.BytesPerOp /= deducePairs
		e.AllocsPerOp /= deducePairs
	}
	p.entries = append(p.entries, pairTel, pairProv, pairHealth, pairBase)
}

// runIncDeduceArms runs the remaining arms of a pass: IncDeduce, the ML
// cache microbenchmarks, the Partition arms, DMatch, and the Fig. 6
// drivers, each gated by -arms.
func runIncDeduceArms(p *pass, g *datagen.Generated, rules []*dcer.Rule, reg *mlpred.Registry, workers int, fig6 bool, expScale float64, treg *telemetry.Registry) {
	// IncDeduce: replay a full chase's facts into a fresh engine through
	// the incremental path A_Δ. The run is pure update-driven drain — the
	// component that dominates the Fig. 6 drivers — A/B'd between the
	// sequential and the batched parallel drain.
	if armOn("IncDeduce") {
		runIncDeduce(p, g, rules, reg)
	}

	// Cache microbenchmarks: the packed-key hit path of the sharded pair
	// cache, and the feature store's bundle reuse over generated records.
	if armOn("MLCache/paircache") {
		logg.Infof("benchmarking MLCache/paircache...")
		pc := mlpred.NewPairCache()
		pcID := pc.ClassifierID("bench")
		rPC := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := relation.TID(i % (1 << 16))
				y := relation.TID((i * 7) % (1 << 16))
				if _, ok := pc.Lookup(pcID, x, y); !ok {
					pc.Store(pcID, x, y, true)
				}
			}
		})
		p.entries = append(p.entries, toEntry("MLCache/paircache", rPC))
	}

	if armOn("MLCache/featurestore") {
		logg.Infof("benchmarking MLCache/featurestore...")
		fs := mlpred.NewFeatureStore(0)
		fsAttrs := fs.AttrsID([]int{1})
		tuples := g.D.Tuples()
		rFS := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var vals []relation.Value
			for i := 0; i < b.N; i++ {
				t := tuples[i%len(tuples)]
				vals = append(vals[:0], t.Val(1))
				fs.Get(t.GID, fsAttrs, vals)
			}
		})
		p.entries = append(p.entries, toEntry("MLCache/featurestore", rFS))
	}

	// Partition arms: the seed-era string-keyed reference partitioner vs
	// the packed-key rewrite on its sequential path and at 8 shards. The
	// equivalence check runs before any timing: the sharded pass must be
	// byte-identical to the sequential one (the reference differs only in
	// its LPT tie-break, so it is compared by its invariants in the
	// hypart tests, not here).
	if armOn("Partition") {
		seqPart, err := hypart.Partition(g.D, rules, workers, hypart.Options{Share: true, Shards: 1})
		if err != nil {
			fatal(err)
		}
		parPart, err := hypart.Partition(g.D, rules, workers, hypart.Options{Share: true, Shards: 8})
		if err != nil {
			fatal(err)
		}
		if !reflect.DeepEqual(seqPart.Fragments, parPart.Fragments) ||
			!reflect.DeepEqual(seqPart.RuleFragments, parPart.RuleFragments) {
			fatal(fmt.Errorf("sharded Partition diverges from the sequential path"))
		}
		arms := []struct {
			name string
			run  func() (*hypart.Result, error)
		}{
			{"Partition/reference", func() (*hypart.Result, error) {
				return hypart.PartitionReference(g.D, rules, workers, hypart.Options{Share: true})
			}},
			{"Partition/shards=1", func() (*hypart.Result, error) {
				return hypart.Partition(g.D, rules, workers, hypart.Options{Share: true, Shards: 1})
			}},
			{"Partition/shards=8", func() (*hypart.Result, error) {
				return hypart.Partition(g.D, rules, workers, hypart.Options{Share: true, Shards: 8})
			}},
		}
		for _, arm := range arms {
			logg.Infof("benchmarking %s...", arm.name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := arm.run(); err != nil {
						b.Fatal(err)
					}
				}
			})
			p.entries = append(p.entries, toEntry(arm.name, r))
		}
	}

	runDistributedArms(p, g, rules, reg)
	runWireCodecArm(p)

	for _, n := range []int{1, workers} {
		name := fmt.Sprintf("DMatch/workers=%d", n)
		if !armOn(name) {
			continue
		}
		logg.Infof("benchmarking %s...", name)
		var sim time.Duration
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := dmatch.Run(g.D, rules, reg, dmatch.Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimulatedTime
			}
		})
		e := toEntry(name, r)
		e.SimulatedTimeNs = int64(sim)
		p.entries = append(p.entries, e)
	}

	// One instrumented DMatch run adds the BSP stage histograms (routing,
	// per-worker busy time) and the HyPart shape to the same registry,
	// then the combined snapshot is embedded in the report together with
	// the run's routing profile.
	if armOn("DMatch") {
		dres, err := dmatch.Run(g.D, rules, reg, dmatch.Options{Workers: workers, Metrics: treg})
		if err != nil {
			fatal(err)
		}
		p.stageHists = stageSnapshot(treg)
		var routeNs int64
		for _, ss := range dres.Timeline().Steps {
			routeNs += ss.RouteNs
		}
		p.routing = &routingStats{
			Workers:         workers,
			Supersteps:      dres.Supersteps,
			MessagesRouted:  dres.MessagesRouted,
			MessagesDeduped: dres.MessagesDeduped,
			RouteNsTotal:    routeNs,
			Rebalances:      len(dres.Rebalances),
		}
		if dres.Supersteps > 0 {
			p.routing.RouteNsPerStep = routeNs / int64(dres.Supersteps)
		}
	}

	if fig6 {
		cfg := experiments.Config{Scale: expScale, Workers: workers, Seed: 1}
		drivers := []struct {
			name string
			run  func(experiments.Config) *experiments.Table
		}{
			{"Fig6ab", experiments.Fig6AB},
			{"Fig6cd", experiments.Fig6CD},
			{"Fig6ef", experiments.Fig6EF},
			{"Fig6gh", experiments.Fig6GH},
			{"Fig6ij", experiments.Fig6IJ},
			{"Fig6kl", experiments.Fig6KL},
		}
		for _, d := range drivers {
			if !armOn(d.name) {
				continue
			}
			logg.Infof("benchmarking %s...", d.name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d.run(cfg)
				}
			})
			p.entries = append(p.entries, toEntry(d.name, r))
		}
	}
}

// runIncDeduce measures the sequential and batched-parallel drain over a
// replayed fact set — plus the compiled-plan A/B over the parallel drain
// — and snapshots the parallel run's engine counters.
func runIncDeduce(p *pass, g *datagen.Generated, rules []*dcer.Rule, reg *mlpred.Registry) {
	base, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true})
	if err != nil {
		fatal(err)
	}
	facts := base.Deduce()
	wantClasses := dcer.CanonicalClasses(base.Classes())
	// An explicit DrainParallelMin forces the batched path even where the
	// default would fall back to sequential (GOMAXPROCS=1 hosts).
	parOpts := chase.Options{ShareIndexes: true, DrainParallelMin: chase.DefaultDrainParallelMin}
	interpOpts := parOpts
	interpOpts.InterpretRules = true
	for _, arm := range []struct {
		name string
		opts chase.Options
	}{
		{"IncDeduce/sequential", chase.Options{ShareIndexes: true, SequentialDrain: true}},
		{"IncDeduce/parallel", parOpts},
		{"IncDeduce/plan=off", interpOpts},
		{"IncDeduce/plan=on", parOpts},
	} {
		logg.Infof("benchmarking %s...", arm.name)
		var last *chase.Engine
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				eng.IncDeduce(facts)
				last = eng
			}
		})
		if got := dcer.CanonicalClasses(last.Classes()); got != wantClasses {
			fatal(fmt.Errorf("%s classes diverge from the full chase", arm.name))
		}
		p.entries = append(p.entries, toEntry(arm.name, r))
		if arm.name == "IncDeduce/parallel" {
			st := last.Stats()
			p.incDeduceStats = &st
		}
	}

	// The health-on/health-off pair over the same incremental drain:
	// back-to-back runs (forced GC before each, GC quiesced inside the
	// timed region, same rationale as the Deduce overhead quads) so the
	// per-pair ratio cancels host drift. The incremental path is where
	// the auditors actually fire repeatedly — the drain loop audits every
	// healthAuditEvery rounds plus once at the fixpoint.
	const incPairs = 6
	truth := eval.NewTruth(g.Truth)
	oneInc := func(mon *health.Monitor) time.Duration {
		runtime.GC()
		gcOld := debug.SetGCPercent(-1)
		t0 := time.Now()
		eng, err := chase.New(g.D, rules, reg, chase.Options{
			ShareIndexes: true, DrainParallelMin: chase.DefaultDrainParallelMin, Health: mon,
		})
		if err != nil {
			fatal(err)
		}
		eng.IncDeduce(facts)
		el := time.Since(t0)
		debug.SetGCPercent(gcOld)
		return el
	}
	hBase := entry{Name: "IncDeduce/health_base", Ops: incPairs}
	hOn := entry{Name: "IncDeduce/health", Ops: incPairs}
	for r := 0; r < incPairs; r++ {
		mon := health.NewMonitor(health.Options{
			Registry:     telemetry.NewRegistry(),
			DiagnosisDir: os.TempDir(),
			Truth:        truth,
			Seed:         1,
		})
		mon.Start()
		b := oneInc(nil)
		h := oneInc(mon)
		mon.Stop()
		hBase.NsPerOp += b.Nanoseconds()
		hOn.NsPerOp += h.Nanoseconds()
		p.incHealthSamples = append(p.incHealthSamples, [2]int64{b.Nanoseconds(), h.Nanoseconds()})
	}
	hBase.NsPerOp /= incPairs
	hOn.NsPerOp /= incPairs
	p.entries = append(p.entries, hOn, hBase)
}

func main() {
	if os.Getenv(benchWorkerEnv) == "1" {
		// Re-exec'd as a DMatchDist worker process: no flags, no report.
		benchWorkerMain()
		return
	}
	scale := flag.Float64("scale", 2.0, "TPCH scale for the Deduce/DMatch benchmarks (2.0 ≈ 57k tuples)")
	expScale := flag.Float64("expscale", 0.1, "experiments.Config scale for the Fig. 6 drivers")
	workers := flag.Int("workers", 8, "DMatch worker count")
	fig6 := flag.Bool("fig6", true, "also run the Fig. 6 experiment drivers")
	repeat := flag.Int("repeat", 3, "measure every benchmark this many times and keep the per-benchmark minimum")
	out := flag.String("out", "BENCH_10.json", "output JSON path")
	prev := flag.String("prev", "BENCH_9.json", "previous report to print the delta table against (empty or missing = skip)")
	plandump := flag.Bool("plandump", false, "print the compiled predicate programs with their observed selectivities (the plan=on attribution run's PlanReport)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	arms := flag.String("arms", "", "regex selecting which benchmark arms run (empty = all)")
	memscale := flag.Float64("memscale", 20, "TPCH scale for the storage arms (20 ≈ 573k tuples; 0 = skip)")
	mem1m := flag.Bool("mem1m", false, "also run the ~1M-tuple ingest+chase arm (TPCH scale 35)")
	membudget := flag.Int64("membudget", 0, "chase.Options.MemBudgetBytes for the memscale storage arms (0 = unbounded)")
	mem1mbudget := flag.Int64("mem1mbudget", 1610612736, "MemBudgetBytes for the -mem1m arm (0 = unbounded; default 1.5 GiB)")
	obs := cliutil.Register()
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}
	if *arms != "" {
		re, err := regexp.Compile(*arms)
		if err != nil {
			fatal(fmt.Errorf("bad -arms regex: %w", err))
		}
		armRE = re
	}
	var stopTel func()
	var err error
	logg, stopTel, err = obs.Init("bench")
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := &report{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Scale:        *scale,
		Repeat:       *repeat,
		SeedBaseline: seedBaseline,
		PR1Baseline:  pr1Baseline,
		Notes: "ns_per_op are wall-clock on this host; simulated_time_ns is the BSP makespan " +
			"(max worker time per superstep, summed), the faithful stand-in for an n-machine cluster. " +
			"The host is a shared single-core VM with ±20% run-to-run variance under external load; " +
			"every benchmark is measured `repeat` times and the per-benchmark minimum recorded " +
			"(the pr1/seed baselines were single-shot and carry the full variance). " +
			"telemetry_overhead_pct compares Deduce with the metrics registry attached against an " +
			"interleaved uninstrumented arm (same-pass sums, GC quiesced inside the timed region, " +
			"least-loaded pass); provenance_overhead_pct measures the justification-log capture the " +
			"same way (unbounded log, worst case; budget ≤ 5%); health_overhead_pct and " +
			"health_inc_overhead_pct measure the health observatory (invariant auditors, stall " +
			"heartbeats, accuracy sampling) the same way over Deduce and the incremental drain " +
			"(budget ≤ 5%); stage_histograms are the per-stage " +
			"latency distributions of the telemetry-enabled pass. The plan=off|on arms A/B the " +
			"compiled predicate plans against the rule interpreter (Options.InterpretRules); " +
			"plan_attribution pairs the two modes' per-rule enumeration time from back-to-back " +
			"telemetry-attached chases. The DMatchDist arms run the same DMatch with the workers " +
			"as separate OS processes over TCP (each re-exec'd from this binary, regenerating the " +
			"dataset from the shared seed); wire_stats keeps their wire-level counters and " +
			"wire_dict_ratio the codec arm's symbol-dictionary compression vs naive inline strings.",
	}

	benchScale = *scale
	logg.Infof("generating TPCH scale %.2f...", *scale)
	g := datagen.TPCH(datagen.TPCHOptions{Scale: *scale, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		fatal(err)
	}
	for _, rel := range g.D.Relations {
		rep.Tuples += len(rel.Tuples)
	}
	rep.Rules = len(rules)

	// Measure `repeat` full passes and keep, per benchmark, the entry with
	// the minimum ns/op (and the engine stats of the best parallel
	// IncDeduce pass). The merge preserves first-pass ordering. Every pass
	// re-asserts the sequential/parallel class identity, so the flag below
	// reports the conjunction over all passes.
	best := map[string]entry{}
	var order []string
	var pairSamples [][4]int64
	var incHealthSamples [][2]int64
	for r := 0; r < *repeat; r++ {
		if *repeat > 1 {
			logg.Infof("--- pass %d/%d ---", r+1, *repeat)
		}
		p := runPass(g, rules, *workers, *fig6, *expScale)
		for _, e := range p.entries {
			prevBest, seen := best[e.Name]
			if !seen {
				order = append(order, e.Name)
			}
			if !seen || e.NsPerOp < prevBest.NsPerOp {
				best[e.Name] = e
				if e.Name == "IncDeduce/parallel" {
					rep.IncDeduceStats = p.incDeduceStats
				}
				if e.Name == "Deduce/telemetry" {
					rep.StageHistograms = p.stageHists
					rep.RoutingStats = p.routing
				}
				if snap, ok := p.wireStats[e.Name]; ok {
					if rep.WireStats == nil {
						rep.WireStats = map[string]wire.Snapshot{}
					}
					rep.WireStats[e.Name] = snap
				}
			}
		}
		if p.dictRatio > 0 {
			rep.WireDictRatio = p.dictRatio
		}
		pairSamples = append(pairSamples, p.pairSamples...)
		incHealthSamples = append(incHealthSamples, p.incHealthSamples...)
	}
	rep.TelemetryOverheadPct = medianOverheadPct(pairSamples, 1)
	rep.ProvenanceOverheadPct = medianOverheadPct(pairSamples, 2)
	rep.HealthOverheadPct = medianOverheadPct(pairSamples, 3)
	rep.HealthIncOverheadPct = medianPairPct(incHealthSamples)
	rep.ClassesIdentical = true // runPass fatals on any divergence
	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, best[name])
	}

	// The attribution pass runs once: it pairs two telemetry-attached
	// chases (interpreter, then plans) so per-rule speedups come from runs
	// under the same load, and keeps the plan run's compiled programs.
	if armOn("Deduce/plan=on") {
		logg.Infof("attributing per-rule plan speedup...")
		rep.PlanAttribution, rep.PlanReport = runPlanAttribution(g, rules, mlpred.DefaultRegistry())
	}

	// Storage arms run once, after the timing passes: the axes are live
	// bytes and peak RSS, which repeated minima would not sharpen.
	rep.Memory = runStorageArms(*memscale, *mem1m, *membudget, *mem1mbudget)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, best of %d)\n", *out, len(rep.Benchmarks), *repeat)
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %3d ops  %12d ns/op  %10d allocs/op\n", e.Name, e.Ops, e.NsPerOp, e.AllocsPerOp)
	}
	if rs := rep.RoutingStats; rs != nil {
		fmt.Printf("routing (w=%d): %d supersteps, %d routed, %d deduped, %s route time per superstep, %d rebalances\n",
			rs.Workers, rs.Supersteps, rs.MessagesRouted, rs.MessagesDeduped,
			time.Duration(rs.RouteNsPerStep).Round(time.Microsecond), rs.Rebalances)
	}
	if len(rep.WireStats) > 0 {
		var names []string
		for n := range rep.WireStats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			w := rep.WireStats[n]
			fmt.Printf("wire (%s): out=%s in=%s frames=%d/%d encode=%s decode=%s dict=%d strings %s\n",
				n, fmtBytes(w.BytesOut), fmtBytes(w.BytesIn), w.FramesOut, w.FramesIn,
				time.Duration(w.EncodeNs).Round(time.Microsecond),
				time.Duration(w.DecodeNs).Round(time.Microsecond),
				w.DictStrings, fmtBytes(w.DictBytes))
		}
	}
	if rep.WireDictRatio > 0 {
		fmt.Printf("wire dictionary ratio: %.1fx vs naive inline model strings (acceptance ≥ 3x)\n", rep.WireDictRatio)
	}
	fmt.Printf("telemetry overhead: %+.2f%% (Deduce/telemetry vs its interleaved uninstrumented arm, median triple)\n",
		rep.TelemetryOverheadPct)
	fmt.Printf("provenance overhead: %+.2f%% (Deduce with an unbounded justification log vs the same arm; budget ≤ 5%%)\n",
		rep.ProvenanceOverheadPct)
	fmt.Printf("health overhead: %+.2f%% Deduce, %+.2f%% IncDeduce (auditors + heartbeats + accuracy sampling vs paired health-off arms; budget ≤ 5%%)\n",
		rep.HealthOverheadPct, rep.HealthIncOverheadPct)
	printMemTable(rep)
	printAttribution(rep)
	printPlanAttribution(rep)
	if *plandump && rep.PlanReport != nil {
		dump, err := json.MarshalIndent(rep.PlanReport, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compiled plans (current order, observed selectivities):\n%s\n", dump)
	}
	printDelta(rep, *prev)
}

// printPlanAttribution renders the per-rule interpreter-vs-plan table.
func printPlanAttribution(rep *report) {
	if len(rep.PlanAttribution) == 0 {
		return
	}
	fmt.Println("per-rule plan attribution (telemetry-attached Deduce, interpreter vs compiled plans):")
	fmt.Printf("  %-8s %12s %12s %9s %14s %9s\n", "rule", "interp", "plan", "speedup", "preds-eval", "reorders")
	for _, r := range rep.PlanAttribution {
		fmt.Printf("  %-8s %12s %12s %8.2fx %14d %9d\n",
			r.Rule, time.Duration(int64(r.InterpNs)).Round(time.Microsecond),
			time.Duration(int64(r.PlanNs)).Round(time.Microsecond), r.Speedup, r.PredEvals, r.Reorders)
	}
}

// printMemTable renders the storage arms as a bytes/tuple table.
func printMemTable(rep *report) {
	if len(rep.Memory) == 0 {
		return
	}
	fmt.Println("storage arms (live heap after GC; peak RSS per arm where resettable):")
	fmt.Printf("  %-20s %9s %10s %8s %11s %11s %10s\n",
		"arm", "tuples", "time", "B/tuple", "live-heap", "peak-RSS", "allocs")
	for _, m := range rep.Memory {
		rss := fmtBytes(m.PeakRSSBytes)
		if !m.PeakRSSReset {
			rss += "*"
		}
		fmt.Printf("  %-20s %9d %10s %8.1f %11s %11s %10d\n",
			m.Name, m.Tuples, time.Duration(m.NsTotal).Round(time.Millisecond),
			m.BytesPerTuple, fmtBytes(m.DeltaLiveBytes), rss, m.AllocsTotal)
	}
}

// fmtBytes renders a byte count with a binary suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30 || b <= -(1<<30):
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20 || b <= -(1<<20):
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10 || b <= -(1<<10):
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// medianOverheadPct reduces the interleaved overhead quads to one
// number: per quad, the ratio of the given arm (1 = telemetry,
// 2 = provenance, 3 = health) to the uninstrumented base it ran back to
// back with, then the median ratio across every quad of every pass, as a
// percentage over 100%. The chases of a quad see the same external load,
// so the ratio cancels host drift; the median discards the quads a load
// spike corrupted, which on this host class would move even a
// least-loaded-pass sum by several percent — above the instrumentation
// cost being measured.
func medianOverheadPct(samples [][4]int64, arm int) float64 {
	ratios := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s[0] > 0 {
			ratios = append(ratios, float64(s[arm])/float64(s[0]))
		}
	}
	return medianRatioPct(ratios)
}

// medianPairPct is the same reduction for the two-arm IncDeduce health
// pairs: median over the per-pair on/off ratios, as a percentage.
func medianPairPct(samples [][2]int64) float64 {
	ratios := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s[0] > 0 {
			ratios = append(ratios, float64(s[1])/float64(s[0]))
		}
	}
	return medianRatioPct(ratios)
}

// medianRatioPct renders the median of instrumented/base ratios as a
// percentage over 100% (empty input = 0).
func medianRatioPct(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	n := len(ratios)
	if n%2 == 1 {
		return 100 * (ratios[n/2] - 1)
	}
	return 100 * ((ratios[n/2-1]+ratios[n/2])/2 - 1)
}

// printAttribution breaks the instrumented time down by stage: each
// duration histogram's share of the total time the telemetry pass saw.
func printAttribution(rep *report) {
	sums := map[string]float64{}
	var total float64
	for _, h := range rep.StageHistograms {
		if !strings.HasSuffix(h.Name, "_ns") {
			continue
		}
		sums[h.Name] += h.Sum
		total += h.Sum
	}
	if total == 0 {
		return
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return sums[names[i]] > sums[names[j]] })
	fmt.Println("stage attribution (telemetry pass, summed over instrumented regions):")
	for _, n := range names {
		fmt.Printf("  %-32s %12s  %5.1f%%\n", n, time.Duration(sums[n]).Round(time.Millisecond), 100*sums[n]/total)
	}
}

// printDelta compares the run against a previous BENCH_<n>.json report.
func printDelta(rep *report, path string) {
	if path == "" {
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		logg.Warnf("no previous report %s: %v", path, err)
		return
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		logg.Warnf("unreadable previous report %s: %v", path, err)
		return
	}
	prevNs := make(map[string]int64, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		prevNs[e.Name] = e.NsPerOp
	}
	fmt.Printf("vs %s:\n", path)
	for _, e := range rep.Benchmarks {
		if p, ok := prevNs[e.Name]; ok && p > 0 {
			fmt.Printf("  %-24s %12d -> %12d ns/op  %+6.1f%%\n",
				e.Name, p, e.NsPerOp, 100*float64(e.NsPerOp-p)/float64(p))
		}
	}
	// Per-superstep route time: the previous report predates the
	// routing_stats field, so fall back to its dcer_dmatch_route_ns stage
	// histogram (sum/count over the instrumented run's supersteps).
	if rep.RoutingStats != nil {
		oldPerStep := float64(0)
		if old.RoutingStats != nil {
			oldPerStep = float64(old.RoutingStats.RouteNsPerStep)
		} else {
			for _, h := range old.StageHistograms {
				if h.Name == "dcer_dmatch_route_ns" && h.Count > 0 {
					oldPerStep = h.Sum / float64(h.Count)
					break
				}
			}
		}
		if oldPerStep > 0 {
			newPerStep := float64(rep.RoutingStats.RouteNsPerStep)
			fmt.Printf("  %-24s %12.0f -> %12.0f ns/superstep  %+6.1f%%\n",
				"DMatch/route", oldPerStep, newPerStep, 100*(newPerStep-oldPerStep)/oldPerStep)
		}
	}
	// Memory deltas: allocations and live/resident bytes per storage arm,
	// with the × factor the acceptance criteria are stated in.
	if len(rep.Memory) > 0 && len(old.Memory) > 0 {
		prevMem := make(map[string]memEntry, len(old.Memory))
		for _, m := range old.Memory {
			prevMem[m.Name] = m
		}
		ratio := func(oldV, newV int64) string {
			if newV <= 0 || oldV <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", float64(oldV)/float64(newV))
		}
		fmt.Printf("memory vs %s:\n", path)
		for _, m := range rep.Memory {
			o, ok := prevMem[m.Name]
			if !ok {
				continue
			}
			fmt.Printf("  %-20s allocs %d -> %d (%s fewer)  live %s -> %s (%s lower)  peakRSS %s -> %s (%s lower)\n",
				m.Name, o.AllocsTotal, m.AllocsTotal, ratio(o.AllocsTotal, m.AllocsTotal),
				fmtBytes(o.DeltaLiveBytes), fmtBytes(m.DeltaLiveBytes), ratio(o.DeltaLiveBytes, m.DeltaLiveBytes),
				fmtBytes(o.PeakRSSBytes), fmtBytes(m.PeakRSSBytes), ratio(o.PeakRSSBytes, m.PeakRSSBytes))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
