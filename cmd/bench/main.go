// Command bench is the repo's performance harness: it benchmarks the
// chase hot path (first-pass Deduce, sequential vs concurrent), the full
// parallel DMatch run, and the Fig. 6 experiment drivers on the synthetic
// generators, then writes the results to a JSON file (BENCH_<n>.json by
// convention, one per perf PR) so the performance trajectory of the
// engine is tracked in-repo.
//
//	go run ./cmd/bench                   # full run, writes BENCH_1.json
//	go run ./cmd/bench -fig6=false       # hot-path benchmarks only
//	go run ./cmd/bench -scale 1.0 -out /tmp/bench.json
//
// The Deduce benchmarks assert that the sequential and concurrent passes
// reach byte-identical equivalence classes before reporting numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dcer"
	"dcer/internal/chase"
	"dcer/internal/datagen"
	"dcer/internal/dmatch"
	"dcer/internal/experiments"
	"dcer/internal/mlpred"
)

// entry is one benchmark measurement.
type entry struct {
	Name            string `json:"name"`
	Ops             int    `json:"ops"`
	NsPerOp         int64  `json:"ns_per_op"`
	BytesPerOp      int64  `json:"bytes_per_op"`
	AllocsPerOp     int64  `json:"allocs_per_op"`
	SimulatedTimeNs int64  `json:"simulated_time_ns,omitempty"`
}

// report is the BENCH_<n>.json document.
type report struct {
	GOOS             string  `json:"goos"`
	GOARCH           string  `json:"goarch"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Scale            float64 `json:"scale"`
	Tuples           int     `json:"tuples"`
	Rules            int     `json:"rules"`
	ClassesIdentical bool    `json:"classes_identical"`
	Benchmarks       []entry `json:"benchmarks"`
	// SeedBaseline carries the measurements taken at the growth seed
	// (before PR 1), on the same host class, for trajectory comparison.
	SeedBaseline []entry `json:"seed_baseline"`
	Notes        string  `json:"notes"`
}

// seedBaseline was measured at the seed commit (pre PR 1) on the same
// dataset (TPCH scale 2.0, Dup 0.3, seed 1 → 57336 tuples, 6 rules) and
// host class (single-core 2.1 GHz Xeon). Deduce had no concurrent mode
// then, so the sequential number doubles as the seed hot-path number.
var seedBaseline = []entry{
	{Name: "Deduce/sequential@seed", Ops: 3, NsPerOp: 2226823835, BytesPerOp: 119643338, AllocsPerOp: 4343969},
	{Name: "DMatch/workers=8@seed", Ops: 3, NsPerOp: 6390755182, BytesPerOp: 525228584, AllocsPerOp: 14412321},
}

func toEntry(name string, r testing.BenchmarkResult) entry {
	return entry{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	scale := flag.Float64("scale", 2.0, "TPCH scale for the Deduce/DMatch benchmarks (2.0 ≈ 57k tuples)")
	expScale := flag.Float64("expscale", 0.1, "experiments.Config scale for the Fig. 6 drivers")
	workers := flag.Int("workers", 8, "DMatch worker count")
	fig6 := flag.Bool("fig6", true, "also run the Fig. 6 experiment drivers")
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	flag.Parse()

	rep := &report{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scale:        *scale,
		SeedBaseline: seedBaseline,
		Notes: "ns_per_op are wall-clock on this host; simulated_time_ns is the BSP makespan " +
			"(max worker time per superstep, summed), the faithful stand-in for an n-machine cluster.",
	}

	fmt.Fprintf(os.Stderr, "generating TPCH scale %.2f...\n", *scale)
	g := datagen.TPCH(datagen.TPCHOptions{Scale: *scale, Dup: 0.3, Seed: 1})
	rules, err := g.Rules()
	if err != nil {
		fatal(err)
	}
	for _, rel := range g.D.Relations {
		rep.Tuples += len(rel.Tuples)
	}
	rep.Rules = len(rules)

	reg := mlpred.DefaultRegistry()
	classes := map[bool]string{}
	for _, seq := range []bool{true, false} {
		name := "Deduce/concurrent"
		if seq {
			name = "Deduce/sequential"
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", name)
		var last *chase.Engine
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := chase.New(g.D, rules, reg, chase.Options{ShareIndexes: true, SequentialDeduce: seq})
				if err != nil {
					b.Fatal(err)
				}
				eng.Deduce()
				last = eng
			}
		})
		classes[seq] = dcer.CanonicalClasses(last.Classes())
		rep.Benchmarks = append(rep.Benchmarks, toEntry(name, r))
	}
	rep.ClassesIdentical = classes[true] == classes[false]
	if !rep.ClassesIdentical {
		fatal(fmt.Errorf("sequential and concurrent Deduce disagree on equivalence classes"))
	}

	for _, n := range []int{1, *workers} {
		name := fmt.Sprintf("DMatch/workers=%d", n)
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", name)
		var sim time.Duration
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := dmatch.Run(g.D, rules, reg, dmatch.Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimulatedTime
			}
		})
		e := toEntry(name, r)
		e.SimulatedTimeNs = int64(sim)
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	if *fig6 {
		cfg := experiments.Config{Scale: *expScale, Workers: *workers, Seed: 1}
		drivers := []struct {
			name string
			run  func(experiments.Config) *experiments.Table
		}{
			{"Fig6ab", experiments.Fig6AB},
			{"Fig6cd", experiments.Fig6CD},
			{"Fig6ef", experiments.Fig6EF},
			{"Fig6gh", experiments.Fig6GH},
			{"Fig6ij", experiments.Fig6IJ},
			{"Fig6kl", experiments.Fig6KL},
		}
		for _, d := range drivers {
			fmt.Fprintf(os.Stderr, "benchmarking %s...\n", d.name)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d.run(cfg)
				}
			})
			rep.Benchmarks = append(rep.Benchmarks, toEntry(d.name, r))
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %3d ops  %12d ns/op  %10d allocs/op\n", e.Name, e.Ops, e.NsPerOp, e.AllocsPerOp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
