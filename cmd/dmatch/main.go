// Command dmatch runs deep and collective entity resolution over a
// directory of CSV relations and a file of MRL rules.
//
// Usage:
//
//	dmatch -data ./data -rules rules.mrl [-workers 8] [-v]
//	       [-out matches.csv] [-explain "Rel:id1,Rel:id2"]
//	       [-telemetry :9090] [-traceout trace.json] [-health dir]
//	       [-timeline] [-log debug]
//
// With -telemetry the run serves live Prometheus-style metrics at
// /metrics, the trace ring and BSP timeline as JSON at /debug/dcer, the
// causal trace as Chrome trace-event JSON at /debug/trace, the health
// report at /debug/health, and the standard pprof handlers. With -health
// the engines run under the health observatory — invariant auditors,
// stall watchdog writing flight-recorder bundles under the given
// directory — inspectable live with cmd/doctor. With -traceout the causal trace (supersteps,
// per-worker Deduce lanes, routing, drain rounds) is written to the
// given file on exit — load it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. -timeline prints the superstep Gantt chart of a
// parallel run to stderr when it finishes; -log debug emits one wide
// JSON event per superstep and per drain round.
//
// Each data/<name>.csv becomes relation <name>; the header row is typed
// ("attr:type", with "!id" marking the designated id attribute). The rule
// file uses the MRL DSL (see the rule package docs). Output is one line
// per resolved entity class listing the member tuples. With -explain, the
// proof of one specific match is printed instead, extracted from the
// production engine's justification log (with -workers > 1, from the
// stitched cross-worker log of the parallel run). See also cmd/explain
// for batch proof extraction and audit sampling.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcer"
	"dcer/internal/cliutil"
)

// runDistributedMaster re-executes this binary as the worker processes
// (each loads the same -data/-rules itself) and drives the distributed
// BSP fixpoint over TCP. With crashWorker >= 0, that worker is spawned
// with -crash-after 1 to exercise the recovery path.
func runDistributedMaster(d *dcer.Dataset, rules []*dcer.Rule, reg *dcer.ClassifierRegistry,
	popts dcer.ParallelOptions, dataDir, rulesFile, listen string, crashWorker int) (*dcer.ParallelResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for worker spawn: %w", err)
	}
	var procs []*exec.Cmd
	spawn := func(worker int, addr string) error {
		args := []string{
			"-worker", "-connect", addr, "-worker-id", strconv.Itoa(worker),
			"-data", dataDir, "-rules", rulesFile,
		}
		if worker == crashWorker {
			args = append(args, "-crash-after", "1")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		procs = append(procs, cmd)
		return nil
	}
	res, err := dcer.MatchDistributed(d, rules, reg, popts, dcer.DistributedOptions{
		Listen: listen,
		Spawn:  spawn,
	})
	for _, p := range procs {
		p.Wait() // reap; a crash-injected worker exits 3 by design
	}
	return res, err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dmatch: ")
	dataDir := flag.String("data", "", "directory of <relation>.csv files")
	rulesFile := flag.String("rules", "", "MRL rule file")
	workers := flag.Int("workers", 1, "number of BSP workers (1 = sequential Match)")
	verbose := flag.Bool("v", false, "print engine statistics")
	explain := flag.String("explain", "", `explain one match: "Rel:idvalue,Rel:idvalue"`)
	outFile := flag.String("out", "", "also write the matches as CSV (relation,id,entity columns)")
	timeline := flag.Bool("timeline", false, "print the BSP superstep Gantt chart after a parallel run")
	distributed := flag.Bool("distributed", false, "run the BSP workers as separate OS processes over TCP (master mode; needs -workers >= 2)")
	listen := flag.String("listen", "", "master listen address with -distributed (default 127.0.0.1:0, an ephemeral local port)")
	workerMode := flag.Bool("worker", false, "run as a distributed worker process (spawned by a -distributed master)")
	connect := flag.String("connect", "", "master address a -worker dials")
	workerID := flag.Int("worker-id", -1, "this worker's slot (with -worker)")
	crashAfter := flag.Int("crash-after", 0, "fault injection: abort this -worker after sending N deltas (exit code 3)")
	crashWorker := flag.Int("crash-worker", -1, "fault injection: spawn worker N with -crash-after 1 (with -distributed; exercises recovery)")
	obs := cliutil.Register()
	flag.Parse()
	if *dataDir == "" || *rulesFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateModes(modeConfig{
		DataDir: *dataDir, RulesFile: *rulesFile, Workers: *workers,
		Distributed: *distributed, Worker: *workerMode,
		Listen: *listen, Connect: *connect, WorkerID: *workerID,
		CrashAfter: *crashAfter, CrashWorker: *crashWorker,
		Explain: *explain, Out: *outFile,
	}); err != nil {
		log.Fatal(err)
	}
	logg, stopTel, err := obs.Init("dmatch")
	if err != nil {
		log.Fatal(err)
	}
	defer stopTel()

	d, err := dcer.LoadDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	text, err := os.ReadFile(*rulesFile)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := dcer.ParseRules(string(text), d.DB)
	if err != nil {
		log.Fatal(err)
	}
	reg := dcer.DefaultClassifiers()

	if *workerMode {
		// Worker half of a distributed run: this process loaded the same
		// -data/-rules the master did (the handshake fingerprint proves
		// it); serve supersteps until the master says done.
		err := dcer.MatchWorker(*connect, d, rules, reg, dcer.DistributedWorkerOptions{
			Worker:     *workerID,
			CrashAfter: *crashAfter,
		})
		if errors.Is(err, dcer.ErrWorkerCrash) {
			os.Exit(3)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *explain != "" {
		a, b, err := parseExplainTarget(d, *explain)
		if err != nil {
			log.Fatal(err)
		}
		var ex *dcer.Explanation
		if *workers <= 1 {
			ex, err = dcer.Explain(d, rules, reg, a, b)
		} else {
			ex, err = dcer.ExplainParallel(d, rules, reg,
				dcer.ParallelOptions{Workers: *workers, Metrics: obs.Registry()}, a, b)
		}
		if errors.Is(err, dcer.ErrNoMatch) {
			fmt.Println("no match: the pair is not entailed by the rules")
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex.Render(d))
		return
	}

	var classes [][]dcer.TID
	if *workers <= 1 {
		eng, err := dcer.NewEngine(d, rules, reg, dcer.EngineOptions{
			ShareIndexes: true,
			Metrics:      obs.Registry(),
			Log:          logg,
			Health:       obs.Health(),
		})
		if err != nil {
			log.Fatal(err)
		}
		eng.Run()
		classes = eng.Classes()
		if *verbose {
			st := eng.Stats()
			logg.Infof("valuations=%d matches=%d validated=%d deps=%d rounds=%d",
				st.Valuations, st.MatchesFound, st.MLValidated, st.DepsRecorded, st.Rounds)
		}
	} else {
		popts := dcer.ParallelOptions{
			Workers: *workers,
			Metrics: obs.Registry(),
			Log:     logg,
			Health:  obs.Health(),
		}
		var res *dcer.ParallelResult
		var err error
		if *distributed {
			res, err = runDistributedMaster(d, rules, reg, popts, *dataDir, *rulesFile, *listen, *crashWorker)
		} else {
			res, err = dcer.MatchParallel(d, rules, reg, popts)
		}
		if err != nil {
			log.Fatal(err)
		}
		classes = res.Classes()
		if *verbose {
			logg.Infof("workers=%d supersteps=%d messages=%d deduped=%d rebalances=%d recoveries=%d partition=%v er=%v sim=%v",
				*workers, res.Supersteps, res.MessagesRouted, res.MessagesDeduped,
				len(res.Rebalances), len(res.Recoveries), res.PartitionTime, res.ERTime, res.SimulatedTime)
			if *distributed {
				w := res.Wire
				logg.Infof("wire: out=%dB in=%dB frames=%d/%d encode=%v decode=%v dict=%d strings %dB (naive %dB)",
					w.BytesOut, w.BytesIn, w.FramesOut, w.FramesIn,
					time.Duration(w.EncodeNs), time.Duration(w.DecodeNs),
					w.DictStrings, w.DictBytes, w.NaiveSymBytes)
			}
		}
		if *timeline {
			fmt.Fprint(os.Stderr, res.Timeline().Gantt())
		}
	}

	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	if *outFile != "" {
		if err := writeMatches(*outFile, d, classes); err != nil {
			log.Fatal(err)
		}
	}
	for _, class := range classes {
		sort.Slice(class, func(i, j int) bool { return class[i] < class[j] })
		for k, gid := range class {
			t := d.Tuple(gid)
			s := d.SchemaOf(t)
			if k > 0 {
				fmt.Print("  ==  ")
			}
			fmt.Printf("%s(%s)", s.Name, t.ID(s))
		}
		fmt.Println()
	}
}

// writeMatches persists the resolved entities as CSV: one row per member
// tuple, with an entity column numbering the equivalence classes.
func writeMatches(path string, d *dcer.Dataset, classes [][]dcer.TID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"entity", "relation", "id", "gid"}); err != nil {
		return err
	}
	for ei, class := range classes {
		for _, gid := range class {
			t := d.Tuple(gid)
			s := d.SchemaOf(t)
			if err := w.Write([]string{
				strconv.Itoa(ei), s.Name, t.ID(s).String(), strconv.Itoa(int(gid)),
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// parseExplainTarget resolves "Rel:idvalue,Rel:idvalue" to two tuple ids.
func parseExplainTarget(d *dcer.Dataset, spec string) (dcer.TID, dcer.TID, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`-explain wants "Rel:idvalue,Rel:idvalue", got %q`, spec)
	}
	var out [2]dcer.TID
	for i, part := range parts {
		relName, idVal, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return 0, 0, fmt.Errorf("bad tuple reference %q", part)
		}
		rel := d.Relation(relName)
		if rel == nil {
			return 0, 0, fmt.Errorf("no relation %q", relName)
		}
		found := false
		for _, t := range rel.Tuples {
			if t.ID(rel.Schema).String() == idVal {
				out[i] = t.GID
				found = true
				break
			}
		}
		if !found {
			return 0, 0, fmt.Errorf("no tuple %s in %s", idVal, relName)
		}
	}
	return out[0], out[1], nil
}
