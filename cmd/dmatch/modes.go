package main

import (
	"errors"
	"fmt"

	"dcer/internal/cliutil"
)

// modeConfig is the flag combination that selects the execution mode —
// sequential, in-process parallel, distributed master, or worker process
// — split out of main so the validation rules are table-testable.
type modeConfig struct {
	DataDir, RulesFile string
	Workers            int
	Distributed        bool
	Worker             bool
	Listen             string
	Connect            string
	WorkerID           int
	CrashAfter         int
	CrashWorker        int
	Explain            string
	Out                string
}

// validateModes rejects inconsistent flag combinations with an error
// naming the offending flags, before any data is loaded.
func validateModes(c modeConfig) error {
	if c.DataDir == "" || c.RulesFile == "" {
		return errors.New("-data and -rules are required")
	}
	if c.Workers < 0 {
		return fmt.Errorf("invalid -workers %d: the worker count must not be negative (use 1 for the sequential Match)", c.Workers)
	}
	if c.Worker && c.Distributed {
		return errors.New("-worker and -distributed are mutually exclusive: a process is the master or a worker, not both")
	}
	if c.Worker {
		if c.Connect == "" {
			return errors.New("-worker requires -connect host:port (the master's address)")
		}
		if err := cliutil.ValidateTCPAddr(c.Connect); err != nil {
			return fmt.Errorf("-connect: %w", err)
		}
		if c.WorkerID < 0 {
			return fmt.Errorf("-worker requires a non-negative -worker-id, got %d", c.WorkerID)
		}
		if c.Listen != "" {
			return errors.New("-listen is the master's flag; a -worker dials -connect")
		}
		if c.CrashWorker >= 0 {
			return errors.New("-crash-worker is the master's flag; fault-inject a worker with -crash-after")
		}
		if c.Explain != "" || c.Out != "" {
			return errors.New("-out and -explain belong on the master; a -worker produces no output")
		}
		return nil
	}
	if c.Connect != "" {
		return errors.New("-connect only applies to -worker processes")
	}
	if c.WorkerID >= 0 {
		return errors.New("-worker-id only applies to -worker processes")
	}
	if c.CrashAfter > 0 {
		return errors.New("-crash-after only applies to -worker processes (use -crash-worker on a -distributed master)")
	}
	if !c.Distributed {
		if c.Listen != "" {
			return errors.New("-listen requires -distributed")
		}
		if c.CrashWorker >= 0 {
			return errors.New("-crash-worker requires -distributed")
		}
		return nil
	}
	if c.Workers < 2 {
		return fmt.Errorf("-distributed needs -workers >= 2 (got %d); a single worker is the in-process engine", c.Workers)
	}
	if c.Listen != "" {
		if err := cliutil.ValidateTCPAddr(c.Listen); err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
	}
	if c.CrashWorker >= c.Workers {
		return fmt.Errorf("-crash-worker %d out of range: only %d workers", c.CrashWorker, c.Workers)
	}
	if c.Explain != "" {
		return errors.New("-explain is not supported with -distributed (provenance capture stays in-process)")
	}
	return nil
}
