package main

import (
	"strings"
	"testing"
)

// base returns a valid in-process parallel configuration; each case
// mutates one aspect of it.
func base() modeConfig {
	return modeConfig{
		DataDir:     "data",
		RulesFile:   "rules.mrl",
		Workers:     4,
		WorkerID:    -1,
		CrashWorker: -1,
	}
}

func TestValidateModes(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*modeConfig)
		wantErr string // substring; "" = valid
	}{
		{"sequential default", func(c *modeConfig) { c.Workers = 1 }, ""},
		{"parallel default", func(c *modeConfig) {}, ""},
		{"missing data", func(c *modeConfig) { c.DataDir = "" }, "-data and -rules"},
		{"missing rules", func(c *modeConfig) { c.RulesFile = "" }, "-data and -rules"},
		{"negative workers", func(c *modeConfig) { c.Workers = -1 }, "must not be negative"},

		{"distributed ok", func(c *modeConfig) { c.Distributed = true }, ""},
		{"distributed with listen", func(c *modeConfig) {
			c.Distributed = true
			c.Listen = "127.0.0.1:0"
		}, ""},
		{"distributed one worker", func(c *modeConfig) {
			c.Distributed = true
			c.Workers = 1
		}, "-workers >= 2"},
		{"distributed bad listen", func(c *modeConfig) {
			c.Distributed = true
			c.Listen = "no-port-here"
		}, "-listen"},
		{"distributed listen bad port", func(c *modeConfig) {
			c.Distributed = true
			c.Listen = "127.0.0.1:99999"
		}, "[0, 65535]"},
		{"distributed crash-worker ok", func(c *modeConfig) {
			c.Distributed = true
			c.CrashWorker = 3
		}, ""},
		{"distributed crash-worker out of range", func(c *modeConfig) {
			c.Distributed = true
			c.CrashWorker = 4
		}, "out of range"},
		{"distributed explain", func(c *modeConfig) {
			c.Distributed = true
			c.Explain = "a:1,b:2"
		}, "-explain is not supported"},

		{"worker ok", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
		}, ""},
		{"worker with crash-after", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 2
			c.CrashAfter = 1
		}, ""},
		{"worker and distributed", func(c *modeConfig) {
			c.Worker = true
			c.Distributed = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
		}, "mutually exclusive"},
		{"worker missing connect", func(c *modeConfig) {
			c.Worker = true
			c.WorkerID = 0
		}, "-worker requires -connect"},
		{"worker bad connect", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "nonsense"
			c.WorkerID = 0
		}, "-connect"},
		{"worker missing id", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
		}, "non-negative -worker-id"},
		{"worker with listen", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
			c.Listen = ":0"
		}, "master's flag"},
		{"worker with crash-worker", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
			c.CrashWorker = 1
		}, "master's flag"},
		{"worker with out", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
			c.Out = "m.csv"
		}, "produces no output"},
		{"worker with explain", func(c *modeConfig) {
			c.Worker = true
			c.Connect = "127.0.0.1:4000"
			c.WorkerID = 0
			c.Explain = "a:1,b:2"
		}, "produces no output"},

		{"connect without worker", func(c *modeConfig) { c.Connect = "127.0.0.1:4000" }, "only applies to -worker"},
		{"worker-id without worker", func(c *modeConfig) { c.WorkerID = 0 }, "only applies to -worker"},
		{"crash-after without worker", func(c *modeConfig) { c.CrashAfter = 1 }, "only applies to -worker"},
		{"listen without distributed", func(c *modeConfig) { c.Listen = ":0" }, "-listen requires -distributed"},
		{"crash-worker without distributed", func(c *modeConfig) { c.CrashWorker = 0 }, "-crash-worker requires -distributed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mutate(&c)
			err := validateModes(c)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
