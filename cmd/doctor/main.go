// Command doctor answers "is my engine healthy, and is it still
// accurate?": it scrapes the /debug/health endpoint of a live dcer
// process (one started with -telemetry and -health) or reads a
// flight-recorder bundle written by the stall watchdog, and prints a
// human-readable pass/warn/fail diagnosis.
//
// Usage:
//
//	doctor -addr 127.0.0.1:9090          # scrape a live process
//	doctor -bundle dcer-health/bundle-1-… # read a captured bundle
//
// The exit status is 0 when every check passes (warnings allowed), 1 when
// any check fails, has recorded violations, or no monitor is attached,
// and 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"dcer/internal/health"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doctor: ")
	addr := flag.String("addr", "", "address of a live process's telemetry endpoint (host:port)")
	bundle := flag.String("bundle", "", "path of a flight-recorder bundle directory")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout for -addr")
	flag.Parse()
	if (*addr == "") == (*bundle == "") {
		fmt.Fprintln(os.Stderr, "doctor: exactly one of -addr or -bundle is required")
		flag.Usage()
		os.Exit(2)
	}

	var rep health.Report
	switch {
	case *addr != "":
		r, err := scrape(*addr, *timeout)
		if err != nil {
			log.Printf("%v", err)
			os.Exit(2)
		}
		rep = r
		fmt.Printf("health report scraped from %s\n", *addr)
	default:
		b, err := health.LoadBundle(*bundle)
		if err != nil {
			log.Printf("%v", err)
			os.Exit(2)
		}
		rep = b.Report
		fmt.Printf("flight-recorder bundle %s (reason: %s, captured %s)\n",
			b.Dir, b.Manifest.Reason, time.Unix(0, b.Manifest.CapturedNs).UTC().Format(time.RFC3339))
		for _, miss := range b.Missing {
			fmt.Printf("WARN bundle incomplete: missing %s\n", miss)
		}
	}

	d := health.Diagnose(rep)
	fmt.Println(d.String())
	switch {
	case d.Failures > 0:
		fmt.Printf("UNHEALTHY: %d failure(s), %d warning(s)\n", d.Failures, d.Warnings)
		os.Exit(1)
	case d.Warnings > 0:
		fmt.Printf("healthy with %d warning(s)\n", d.Warnings)
	default:
		fmt.Println("healthy")
	}
}

// scrape fetches and decodes /debug/health from a live process.
func scrape(addr string, timeout time.Duration) (health.Report, error) {
	var rep health.Report
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/debug/health")
	if err != nil {
		return rep, fmt.Errorf("scraping %s: %w", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return rep, fmt.Errorf("reading %s/debug/health: %w", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("%s/debug/health: %s", addr, resp.Status)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return rep, fmt.Errorf("parsing %s/debug/health: %w", addr, err)
	}
	return rep, nil
}
